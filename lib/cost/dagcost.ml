open Sphys

(* DAG-aware plan costing.

   During search, plans are costed tree-wise (every reference to a subplan
   pays for it).  The final cost of a plan that shares spooled
   subexpressions must count each spool *producer* once and charge each
   consumer a read of the materialized result; this module performs that
   deduplicated accounting.  For spool-free plans it coincides with the
   tree-wise cost. *)

(* Two consumers share one materialization exactly when they reference the
   *same* spool plan (winner memoization hands every consumer with the
   same pinned properties the identical plan value); a physically distinct
   plan for the same group is a second materialization and pays in full. *)
let cost (cluster : Cluster.t) (plan : Plan.t) : float =
  let produced : (int, Plan.t list) Hashtbl.t = Hashtbl.create 8 in
  let already_produced (n : Plan.t) =
    let prev = Option.value ~default:[] (Hashtbl.find_opt produced n.Plan.group) in
    if List.exists (fun p -> p == n) prev then true
    else begin
      Hashtbl.replace produced n.Plan.group (n :: prev);
      false
    end
  in
  let rec go (n : Plan.t) : float =
    match n.Plan.op with
    | Physop.P_spool ->
        let read = Costmodel.spool_read_cost cluster n in
        if already_produced n then read
        else
          let children =
            List.fold_left (fun acc c -> acc +. go c) 0.0 n.Plan.children
          in
          n.Plan.op_cost +. children +. read
    | _ ->
        List.fold_left (fun acc c -> acc +. go c) n.Plan.op_cost n.Plan.children
  in
  go plan

(* Same accounting served from the region summaries cached at plan
   construction ([Plan.sbase]/[Plan.srefs]): pay the root's region, then
   close over the spool references -- every reference pays a read, every
   first reference of a distinct spool value additionally pays its inner
   production region and exposes that region's own spool references.
   O(#spool references) per call instead of a full DAG walk, which is what
   the optimizer's candidate comparisons use.  Agrees with [cost] up to
   float summation order (bit-for-bit on spool-free plans); the SA034
   plan lint and the property tests check the two against each other. *)
let cached_cost (cluster : Cluster.t) (plan : Plan.t) : float =
  match plan.Plan.srefs with
  | [] when plan.Plan.op <> Physop.P_spool -> plan.Plan.sbase
  | _ ->
      let produced : (int, Plan.t list) Hashtbl.t = Hashtbl.create 8 in
      let already_produced (n : Plan.t) =
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt produced n.Plan.group)
        in
        if List.exists (fun p -> p == n) prev then true
        else begin
          Hashtbl.replace produced n.Plan.group (n :: prev);
          false
        end
      in
      let total = ref 0.0 in
      let pending = Queue.create () in
      let reference r = Queue.add r pending in
      (match plan.Plan.op with
      | Physop.P_spool -> reference (plan, 1)
      | _ ->
          total := plan.Plan.sbase;
          List.iter reference plan.Plan.srefs);
      while not (Queue.is_empty pending) do
        let s, k = Queue.pop pending in
        let read = Costmodel.spool_read_cost cluster s in
        for _ = 1 to k do
          total := !total +. read
        done;
        if not (already_produced s) then begin
          total := !total +. s.Plan.sbase;
          List.iter reference s.Plan.srefs
        end
      done;
      !total

(* Number of distinct spool materializations and total spool references. *)
let spool_counts (plan : Plan.t) =
  let seen : (int, Plan.t list) Hashtbl.t = Hashtbl.create 8 in
  let refs = ref 0 in
  let rec go (n : Plan.t) =
    (match n.Plan.op with
    | Physop.P_spool ->
        incr refs;
        let prev = Option.value ~default:[] (Hashtbl.find_opt seen n.Plan.group) in
        if not (List.exists (fun p -> p == n) prev) then
          Hashtbl.replace seen n.Plan.group (n :: prev)
    | _ -> ());
    List.iter go n.Plan.children
  in
  go plan;
  let distinct =
    Hashtbl.fold (fun _ l acc -> acc + List.length l) seen 0
  in
  (distinct, !refs)
