(** DAG-aware plan costing.

    Search costs plans tree-wise; the final cost of a plan sharing spooled
    subexpressions counts each materialization once and charges every
    consumer a read. Consumers share a materialization exactly when they
    reference the {e same} plan value (winner memoization guarantees this
    for equal pinned properties); a physically different plan for the same
    group is a second materialization and pays in full. Coincides with the
    tree-wise cost on spool-free plans. *)

val cost : Cluster.t -> Sphys.Plan.t -> float

(** Same deduplicated accounting served from the region summaries cached
    at plan construction ([Plan.sbase]/[Plan.srefs]): O(#spool references)
    per call instead of a full DAG walk. Bit-for-bit equal to {!cost} on
    spool-free plans and equal up to float summation order otherwise; the
    SA034 plan lint cross-checks the cached summaries. This is the variant
    the optimizer uses for candidate comparisons. *)
val cached_cost : Cluster.t -> Sphys.Plan.t -> float

(** [(distinct materializations, total spool references)]. *)
val spool_counts : Sphys.Plan.t -> int * int
