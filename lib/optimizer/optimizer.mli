(** The Cascades-style optimization engine (Algorithms 2 and 5).

    {!optimize_group} memoizes one winner per (phase, extended
    requirement). The engine is extended — not modified — by the CSE
    framework through the {!ext} hook record: phase-1 history recording
    (Section V), enforcement-map propagation to children (Algorithm 5),
    and interception at LCA groups to run re-optimization rounds
    (Algorithm 4). *)

type t = {
  memo : Smemo.Memo.t;
  cluster : Scost.Cluster.t;
  budget : Budget.t;
  mutable phase : int;
  mutable phase2_winner_hits : int;
      (** winner-cache hits while [phase = 2] — the cross-round reuse
          the enforcement-slice keying buys (reported by the pipeline) *)
  mutable tainted : bool;
      (** branch-and-bound honesty flag: true right after a call whose
          result may have been degraded by bound-driven skips and so must
          not be memoized (see {!optimize_group}) *)
  ext : ext;
}

and ext = {
  before_optimize : t -> Smemo.Memo.group -> Extreq.t -> unit;
      (** called once per fresh (group, requirement) optimization *)
  child_extreq :
    t -> child:Smemo.Memo.group -> Sphys.Reqprops.t -> Extreq.t -> Extreq.t;
      (** Algorithm 5, lines 9-17: the child's extended requirement from
          the conventional DetChildProp result and the parent's map *)
  intercept :
    t ->
    Smemo.Memo.group ->
    Extreq.t ->
    self:(Smemo.Memo.group -> Extreq.t -> Sphys.Plan.t option) ->
    log_phys_opt:
      (?bound:float -> Smemo.Memo.group -> Extreq.t -> Sphys.Plan.t option) ->
    Sphys.Plan.t option option;
      (** Algorithm 4, lines 4-12: [Some result] bypasses the default
          optimization (LCA rounds and pinned shared groups) *)
  after_winner : t -> Smemo.Memo.group -> Extreq.t -> Sphys.Plan.t option -> unit;
      (** called when a winner is recorded (VIII-C frequencies) *)
}

(** Hooks that do nothing: the conventional optimizer. *)
val default_ext : ext

val create :
  ?ext:ext -> ?budget:Budget.t -> cluster:Scost.Cluster.t -> Smemo.Memo.t -> t

(** Build a costed plan node for an operator over child plans in a
    group. *)
val mk_plan :
  t -> Smemo.Memo.group -> Sphys.Physop.t -> Sphys.Plan.t list -> Sphys.Plan.t

(** DAG-deduplicated cost used for every plan comparison, served from the
    region summaries cached at plan construction
    ({!Scost.Dagcost.cached_cost}). *)
val plan_cost : t -> Sphys.Plan.t -> float

(** [plan_le t p q]: is [p] no costlier than [q]? Far-apart costs are
    decided on the cached values; near-ties between spool-bearing plans
    (ulp-noise territory for either summation order) fall back to the
    walking {!Scost.Dagcost.cost}, so choices are identical to
    walking-cost comparison. *)
val plan_le : t -> Sphys.Plan.t -> Sphys.Plan.t -> bool

(** Cheapest of a candidate list by {!plan_cost}, each candidate costed
    once, with the {!plan_le} near-tie rules. *)
val cheapest : t -> Sphys.Plan.t list -> Sphys.Plan.t option

(** The candidate filter: the operator's own input requirements hold
    against what the children actually deliver, and the delivered
    properties satisfy the caller's requirement. *)
val valid_candidate : Sphys.Reqprops.t -> Sphys.Plan.t -> bool

(** OptimizeGroup (Algorithm 2): best plan of a group under an extended
    requirement, memoized per phase.  [?bound] (default infinity: off)
    enables branch-and-bound: alternatives whose deduplicated
    partial-children cost provably exceeds [bound] are abandoned.  After a
    bounded call the result is exact iff [t.tainted] is false; a tainted
    result's true value is provably above [bound] and is not memoized. *)
val optimize_group :
  t -> ?bound:float -> Smemo.Memo.group -> Extreq.t -> Sphys.Plan.t option

(** Logical exploration + physical optimization of one group under one
    requirement — the body of Algorithm 5 (no winner lookup).  [?bound]
    as in {!optimize_group}. *)
val log_phys_opt :
  t -> ?bound:float -> Smemo.Memo.group -> Extreq.t -> Sphys.Plan.t option

(** Optimize the memo's root with no requirement. *)
val optimize_root : t -> Sphys.Plan.t option
