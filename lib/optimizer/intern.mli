(** Interned integer ids for normalized extended requirements.

    Winner-table keys used to be canonical strings rebuilt on every
    {!Optimizer.optimize_group} call; interning assigns each distinct
    normalized {!Extreq.t} a small integer once, making the per-call work
    a single structural hash lookup over int-keyed tables.

    The table is global and append-only: ids denote structural
    requirement values.  Group ids inside enforcement maps are only
    meaningful within one memo, but winner tables are per-group, so ids
    never leak winners across memos. *)

(** The id of a requirement, allocating a fresh one on first sight.
    The argument must be normalized ({!Extreq.normalize}): ids are
    assigned per distinct structural value, and an un-normalized
    enforcement list would intern as a different requirement. *)
val id : Extreq.t -> int

(** The requirement a given id was assigned to, if any. *)
val lookup : int -> Extreq.t option

(** Number of distinct requirements interned so far. *)
val size : unit -> int

(** Lookups served from the table / lookups that allocated a fresh id,
    since program start. *)
val hit_count : unit -> int

val miss_count : unit -> int
