(** Optimization budget (Section III): bounds on optimizer work. Tasks
    count group-optimization invocations; the wall-clock bound mirrors the
    30 s / 60 s budgets the paper uses for the large scripts. The
    re-optimization phase checks the budget between rounds and keeps the
    best plan found so far when it runs out. *)

type t = {
  max_tasks : int option;
  max_seconds : float option;
  started : float;
  mutable tasks : int;
  mutable rounds_generated : int;
  mutable rounds_executed : int;
  mutable rounds_aborted : int;  (** branch-and-bound early exits *)
}

val create : ?max_tasks:int -> ?max_seconds:float -> unit -> t
val unlimited : unit -> t

(** Count one optimization task. *)
val tick : t -> unit

val elapsed : t -> float
val exhausted : t -> bool
val note_round_generated : t -> unit
val note_round_executed : t -> unit
val note_round_aborted : t -> unit
