(* Interned integer ids for normalized extended requirements.

   The optimizer keys every winner-table lookup by (phase, extended
   requirement).  Building a canonical string for the requirement on every
   [optimize_group] call -- the hot path of the whole optimizer -- used to
   allocate and hash a fresh key per call.  Interning maps each distinct
   normalized [Extreq.t] to a small integer once, so the per-call work is
   one structural hash lookup and the winner tables become int-keyed.

   The table is global: ids denote structural requirement values, not
   memo-specific state.  Group ids inside enforcement maps are only
   meaningful within one memo, but winner tables are per-group, so a
   requirement interned while optimizing one memo can never be confused
   with another memo's winners. *)

let ids : (Extreq.t, int) Hashtbl.t = Hashtbl.create 256
let back : (int, Extreq.t) Hashtbl.t = Hashtbl.create 256
let hits = Sutil.Counters.counter "intern.hits"
let misses = Sutil.Counters.counter "intern.misses"

let id (extreq : Extreq.t) : int =
  match Hashtbl.find_opt ids extreq with
  | Some i ->
      Atomic.incr hits;
      i
  | None ->
      let i = Hashtbl.length ids in
      Atomic.incr misses;
      Hashtbl.add ids extreq i;
      Hashtbl.add back i extreq;
      i

let lookup i = Hashtbl.find_opt back i
let size () = Hashtbl.length ids
let hit_count () = Atomic.get hits
let miss_count () = Atomic.get misses
