(** Extended required properties (Section VII): the conventional
    requirement plus [PropForSharedGrps] — property sets to be enforced at
    shared groups below, keyed by group id. *)

type t = { req : Sphys.Reqprops.t; enforce : (int * Sphys.Reqprops.t) list }

(** No enforcement map. *)
val plain : Sphys.Reqprops.t -> t

(** Sort and deduplicate the enforcement list. *)
val normalize : t -> t

(** The property set enforced at a group, if any. *)
val enforcement : t -> int -> Sphys.Reqprops.t option

(** Same enforcement map, different conventional requirement. *)
val with_req : t -> Sphys.Reqprops.t -> t

val pp : t Fmt.t
val to_string : t -> string
