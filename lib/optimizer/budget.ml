(* Optimization budget (Section III): bounds the work the optimizer may
   spend.  Tasks count group-optimization invocations; the wall-clock bound
   mirrors the 30s/60s budgets the paper uses for the large scripts.  The
   re-optimization phase checks the budget between rounds and keeps the
   best plan found so far when it runs out. *)

type t = {
  max_tasks : int option;
  max_seconds : float option;
  started : float;
  mutable tasks : int;
  mutable rounds_generated : int;
  mutable rounds_executed : int;
  mutable rounds_aborted : int; (* branch-and-bound early exits *)
}

let create ?max_tasks ?max_seconds () =
  {
    max_tasks;
    max_seconds;
    started = Unix.gettimeofday ();
    tasks = 0;
    rounds_generated = 0;
    rounds_executed = 0;
    rounds_aborted = 0;
  }

let unlimited () = create ()

let tick t = t.tasks <- t.tasks + 1

let elapsed t = Unix.gettimeofday () -. t.started

let exhausted t =
  (match t.max_tasks with Some m -> t.tasks >= m | None -> false)
  || match t.max_seconds with Some s -> elapsed t >= s | None -> false

let note_round_generated t = t.rounds_generated <- t.rounds_generated + 1
let note_round_executed t = t.rounds_executed <- t.rounds_executed + 1
let note_round_aborted t = t.rounds_aborted <- t.rounds_aborted + 1
