(* Logical exploration rules.

   The rule set is small but it is the one that matters for the paper's
   plan space:

   - [gb_split]: GroupBy(keys; aggs) => GroupByGlobal(keys; combine(aggs))
     over a new group holding GroupByLocal(keys; aggs).  This is the
     local/global aggregation rewrite that produces the
     StreamAgg(Local) / exchange / StreamAgg(Global) plans of Figure 8.

   Join commutation is intentionally not a logical rule here: it would
   permute the group's output column order (the row layout is positional);
   build/probe side selection is a physical concern instead. *)

open Relalg

let rule_firings = Sutil.Counters.counter "optimizer.rule_firings"

(* Apply all rules of [phase] to group [g], adding new expressions (and
   possibly new groups) to the memo.  Idempotent per group and phase. *)
let explore (memo : Smemo.Memo.t) (g : Smemo.Memo.group) ~phase =
  if g.Smemo.Memo.explored_phase >= phase then ()
  else begin
    g.Smemo.Memo.explored_phase <- phase;
    let originals = Smemo.Memo.exprs g in
    List.iter
      (fun (e : Smemo.Memo.mexpr) ->
        match e.Smemo.Memo.mop with
        | Slogical.Logop.Group_by { keys; aggs }
          when not
                 (List.exists
                    (fun (e' : Smemo.Memo.mexpr) ->
                      match e'.Smemo.Memo.mop with
                      | Slogical.Logop.Group_by_global _ -> true
                      | _ -> false)
                    (Smemo.Memo.exprs g)) ->
            Sutil.Counters.bump rule_firings 1;
            if Sobs.Trace.enabled () then
              Sobs.Trace.instant ~pid:(Sobs.Trace.pid_of_phase phase)
                ~args:
                  [
                    ("rule", Sobs.Trace.Str "gb_split");
                    ("group", Sobs.Trace.Int g.Smemo.Memo.id);
                  ]
                "rule.fired";
            let child = List.hd e.Smemo.Memo.children in
            let child_schema = (Smemo.Memo.group memo child).Smemo.Memo.schema in
            let local_op = Slogical.Logop.Group_by_local { keys; aggs } in
            let local_schema =
              Slogical.Logop.derive_schema local_op [ child_schema ]
            in
            let local_group =
              Smemo.Memo.add_group memo
                { Smemo.Memo.mop = local_op; children = [ child ] }
                local_schema
            in
            let global_aggs = List.map Agg.global_combinator aggs in
            Smemo.Memo.add_expr memo g
              {
                Smemo.Memo.mop =
                  Slogical.Logop.Group_by_global { keys; aggs = global_aggs };
                children = [ local_group.Smemo.Memo.id ];
              }
        | _ -> ())
      originals
  end
