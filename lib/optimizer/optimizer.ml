open Sphys

(* The Cascades-style optimization engine (Algorithm 2 / Algorithm 5).

   [optimize_group] memoizes a winner per (phase, extended requirement).
   The engine is extended -- not modified -- by the CSE framework through
   the [ext] hook record: recording the property history of shared groups
   (Section V), overriding the requirements of shared children and
   propagating enforcement maps (Algorithm 5), and intercepting
   optimization at LCA groups to run re-optimization rounds
   (Algorithm 4). *)

type t = {
  memo : Smemo.Memo.t;
  cluster : Scost.Cluster.t;
  budget : Budget.t;
  mutable phase : int;
  mutable phase2_winner_hits : int;
      (* winner-cache hits while phase = 2: cross-round reuse *)
  mutable tainted : bool;
      (* the last [optimize_group]/[log_phys_opt] evaluation was cut by a
         cost bound and its result is not the true winner (see the
         branch-and-bound protocol below); tainted results are never
         memoized *)
  ext : ext;
}

and ext = {
  (* called once per fresh (group, requirement) optimization; phase-1 CSE
     history recording hooks in here *)
  before_optimize : t -> Smemo.Memo.group -> Extreq.t -> unit;
  (* Algorithm 5, lines 9-17: build the child's extended requirement from
     the conventional DetChildProp result and the parent's enforcement
     map *)
  child_extreq :
    t -> child:Smemo.Memo.group -> Reqprops.t -> Extreq.t -> Extreq.t;
  (* Algorithm 4, lines 4-12: a [Some result] bypasses the default
     optimization (used for LCA rounds and pinned shared groups) *)
  intercept :
    t ->
    Smemo.Memo.group ->
    Extreq.t ->
    self:(Smemo.Memo.group -> Extreq.t -> Plan.t option) ->
    log_phys_opt:(?bound:float -> Smemo.Memo.group -> Extreq.t -> Plan.t option) ->
    Plan.t option option;
  (* called when a winner is recorded (frequency statistics, VIII-C) *)
  after_winner : t -> Smemo.Memo.group -> Extreq.t -> Plan.t option -> unit;
}

let default_ext =
  {
    before_optimize = (fun _ _ _ -> ());
    child_extreq = (fun _ ~child:_ creq _ -> Extreq.plain creq);
    intercept = (fun _ _ _ ~self:_ ~log_phys_opt:_ -> None);
    after_winner = (fun _ _ _ _ -> ());
  }

let create ?(ext = default_ext) ?(budget = Budget.unlimited ())
    ~(cluster : Scost.Cluster.t) (memo : Smemo.Memo.t) =
  {
    memo;
    cluster;
    budget;
    phase = 1;
    phase2_winner_hits = 0;
    tainted = false;
    ext;
  }

(* Winner-table key: the interned requirement id packed with the phase
   (1 or 2).  [extreq] must already be normalized -- [optimize_group]
   normalizes once at entry. *)
let winner_key t extreq = (Intern.id extreq lsl 2) lor t.phase

let winner_hits = Sutil.Counters.counter "optimizer.winner_hits"
let winner_misses = Sutil.Counters.counter "optimizer.winner_misses"
let ticks = Sutil.Counters.counter "optimizer.tasks"

(* Build a plan node for [op] over [children] in group [g]. *)
let mk_plan t (g : Smemo.Memo.group) op children =
  let stats = g.Smemo.Memo.stats in
  let op_cost = Scost.Costmodel.op_cost t.cluster op children ~out:stats in
  Plan.make ~op ~children ~group:g.Smemo.Memo.id ~schema:g.Smemo.Memo.schema
    ~stats ~op_cost

let plan_cost t p = Scost.Dagcost.cached_cost t.cluster p

(* On spool-free plans the cached region cost is bit-for-bit the walking
   cost; only spool-bearing plans can disagree in the last ulps because
   the closure sums in a different order. *)
let exactly_walked (p : Plan.t) =
  p.Plan.srefs = [] && p.Plan.op <> Physop.P_spool

(* Is [p] strictly cheaper than [q]?  Far-apart costs are decided on the
   cached values; near-ties between spool-bearing plans (within 1e-9
   relative, ulp-noise territory for either summation order) are decided
   on the walking cost, so plan choices are identical to walking-cost
   comparison. *)
let cost_lt t ((p : Plan.t), c) ((q : Plan.t), qc) =
  let scale = Float.max 1.0 (Float.max (Float.abs c) (Float.abs qc)) in
  if Float.abs (c -. qc) > 1e-9 *. scale then c < qc
  else if exactly_walked p && exactly_walked q then c < qc
  else Scost.Dagcost.cost t.cluster p < Scost.Dagcost.cost t.cluster q

(* [p] no costlier than [q], under the same near-tie rules. *)
let plan_le t p q = not (cost_lt t (q, plan_cost t q) (p, plan_cost t p))

(* Each candidate is costed exactly once: the fold carries the running
   best as a (plan, cost) pair instead of re-costing it per comparison. *)
let cheapest t plans =
  List.fold_left
    (fun best p ->
      let c = plan_cost t p in
      match best with
      | None -> Some (p, c)
      | Some pc -> if cost_lt t (p, c) pc then Some (p, c) else best)
    None plans
  |> Option.map fst

(* A candidate is kept only if the operator's own input requirements hold
   against the children actually delivered (enforcement may have overridden
   what was requested) and the delivered properties satisfy the caller's
   requirement. *)
let valid_candidate (req : Reqprops.t) (node : Plan.t) =
  Plan_check.check_op node = [] && Reqprops.satisfied node.Plan.props req

(* Incremental deduplicated lower bound over a set of sibling subplans,
   mirroring [Dagcost.cached_cost]: each plan contributes its spool-free
   region cost plus reads for every spool reference, and each distinct
   spool value contributes its production region once across the whole
   sibling set.  Because a candidate's final cost counts exactly these
   terms (plus its own operator cost and the remaining children), [sum] is
   a true lower bound on any plan completed from the siblings added so
   far — a naive sum of per-child costs would double-count shared spool
   productions and overshoot, which is fatal for pruning soundness. *)
module Lower_bound = struct
  type acc = {
    mutable sum : float;
    produced : (int, Plan.t list) Hashtbl.t;
  }

  let create () = { sum = 0.0; produced = Hashtbl.create 4 }

  let add (cluster : Scost.Cluster.t) acc (p : Plan.t) =
    let already (n : Plan.t) =
      let prev =
        Option.value ~default:[] (Hashtbl.find_opt acc.produced n.Plan.group)
      in
      if List.exists (fun q -> q == n) prev then true
      else begin
        Hashtbl.replace acc.produced n.Plan.group (n :: prev);
        false
      end
    in
    let pending = Queue.create () in
    (match p.Plan.op with
    | Physop.P_spool -> Queue.add (p, 1) pending
    | _ ->
        acc.sum <- acc.sum +. p.Plan.sbase;
        List.iter (fun r -> Queue.add r pending) p.Plan.srefs);
    while not (Queue.is_empty pending) do
      let s, k = Queue.pop pending in
      let read = Scost.Costmodel.spool_read_cost cluster s in
      acc.sum <- acc.sum +. (float_of_int k *. read);
      if not (already s) then begin
        acc.sum <- acc.sum +. s.Plan.sbase;
        List.iter (fun r -> Queue.add r pending) s.Plan.srefs
      end
    done
end

(* Branch-and-bound protocol.  [bound] (default infinity: off) is an upper
   bound on any plan still worth finding — phase-2 rounds pass the
   incumbent round cost, with a hair of relative slack so the cutoff sits
   far outside the near-tie band of [cheapest].  Under a finite bound,
   [log_phys_opt] prunes at its own level only:

   - an implementation alternative is abandoned as soon as the
     deduplicated cost of its completed children exceeds the working
     bound (remaining children and the operator itself cost >= 0, so the
     alternative's true cost is provably above it);
   - a completed candidate provably costlier than the caller's bound is
     dropped — it can never be chosen over the incumbent the bound came
     from;
   - the working bound tightens to the best candidate completed so far,
     so later alternatives are held to the harder target.

   Child groups and enforcer inners are always optimized exactly: their
   winners stay memoized and warm for subsequent rounds (a bound-degraded
   child result would be unrecordable and its work re-paid every round).

   If anything was skipped and no in-bound candidate remains, the [None]
   result is not the group's true answer — only a proof that the true
   answer exceeds [bound].  [t.tainted] signals this to the caller (the
   round aborts); tainted results are never memoized.  With the default
   infinite bound nothing is ever skipped or dropped and the behavior is
   identical to the unbounded engine. *)
let rec optimize_group t ?(bound = infinity) (g : Smemo.Memo.group)
    (extreq : Extreq.t) : Plan.t option =
  let extreq = Extreq.normalize extreq in
  let key = winner_key t extreq in
  match Hashtbl.find_opt g.Smemo.Memo.winners key with
  | Some w ->
      Atomic.incr winner_hits;
      if t.phase = 2 then t.phase2_winner_hits <- t.phase2_winner_hits + 1;
      t.tainted <- false;
      w.Smemo.Memo.wplan
  | None ->
      Atomic.incr winner_misses;
      Atomic.incr ticks;
      Budget.tick t.budget;
      (* span only on the miss path: hits are the memoized fast path and
         would dominate the trace without saying where time went *)
      let traced = Sobs.Trace.enabled () in
      let pid = Sobs.Trace.pid_of_phase t.phase in
      if traced then
        Sobs.Trace.begin_span ~pid
          ~args:[ ("group", Sobs.Trace.Int g.Smemo.Memo.id) ]
          "OptimizeGroup";
      t.ext.before_optimize t g extreq;
      t.tainted <- false;
      let result =
        match
          t.ext.intercept t g extreq
            ~self:(fun g' e' -> optimize_group t g' e')
            ~log_phys_opt:(log_phys_opt t)
        with
        | Some r ->
            (* interception (pinned shared groups, LCA rounds) always
               produces an honest result *)
            t.tainted <- false;
            r
        | None -> log_phys_opt t ~bound g extreq
      in
      if not t.tainted then begin
        Hashtbl.replace g.Smemo.Memo.winners key
          {
            Smemo.Memo.wphase = t.phase;
            wreq = extreq.Extreq.req;
            wenforce = extreq.Extreq.enforce;
            wplan = result;
          };
        t.ext.after_winner t g extreq result
      end;
      if traced then Sobs.Trace.end_span ~pid "OptimizeGroup";
      result

(* Logical exploration + physical optimization of one group under one
   requirement (the body of Algorithm 5). *)
and log_phys_opt t ?(bound = infinity) (g : Smemo.Memo.group)
    (extreq : Extreq.t) : Plan.t option =
  Rules.explore t.memo g ~phase:t.phase;
  let req = extreq.Extreq.req in
  let bounded = bound < infinity in
  let skipped = ref false in
  (* the working bound tightens as candidates complete: a later
     alternative only matters if it can beat the best one found so far.
     The 1e-6 slack keeps every discard outside the near-tie band where
     [cheapest] falls back to walking-cost comparison, so pruned-in and
     pruned-out runs pick identical winners. *)
  let work_bound = ref bound in
  let note_candidate node =
    let c = plan_cost t node in
    if c > bound then begin
      (* provably never chosen over the caller's incumbent; dropping it
         (and flagging the skip) lets a round with no in-bound candidate
         taint instead of completing *)
      skipped := true;
      None
    end
    else begin
      let tight = c *. (1.0 +. 1e-6) in
      if tight < !work_bound then work_bound := tight;
      Some node
    end
  in
  let impl_candidates =
    List.concat_map
      (fun (e : Smemo.Memo.mexpr) ->
        List.filter_map
          (fun (alt : Impl.alt) ->
            if not bounded then begin
              (* the exact unbounded engine: every child evaluated *)
              let children =
                List.map2
                  (fun cgid creq ->
                    let child = Smemo.Memo.group t.memo cgid in
                    let cext = t.ext.child_extreq t ~child creq extreq in
                    optimize_group t child cext)
                  e.Smemo.Memo.children alt.Impl.child_reqs
              in
              if List.for_all Option.is_some children then
                let node =
                  mk_plan t g alt.Impl.op (List.map Option.get children)
                in
                if valid_candidate req node then Some node else None
              else None
            end
            else begin
              (* children left to right; the deduplicated cost of the
                 completed prefix is a lower bound on the candidate's
                 final cost *)
              (* children stay exact (and so memoized — warm for later
                 rounds; a bounded child could taint, and tainted results
                 are not recordable, so every later round would re-pay
                 the same subtree); the bound cuts at this level only *)
              let lb = Lower_bound.create () in
              let rec go acc cgids creqs =
                match (cgids, creqs) with
                | [], [] -> Some (List.rev acc)
                | cgid :: cgids', creq :: creqs' ->
                    if lb.Lower_bound.sum > !work_bound then begin
                      skipped := true;
                      None
                    end
                    else begin
                      let child = Smemo.Memo.group t.memo cgid in
                      let cext = t.ext.child_extreq t ~child creq extreq in
                      match optimize_group t child cext with
                      | None -> None (* genuinely infeasible child *)
                      | Some p ->
                          Lower_bound.add t.cluster lb p;
                          go (p :: acc) cgids' creqs'
                    end
                | _ -> None
              in
              match go [] e.Smemo.Memo.children alt.Impl.child_reqs with
              | None -> None
              | Some children ->
                  let node = mk_plan t g alt.Impl.op children in
                  if valid_candidate req node then note_candidate node
                  else None
            end)
          (Impl.alternatives e req))
      (Smemo.Memo.exprs g)
  in
  let enforcer_candidates =
    List.filter_map
      (fun (alt : Enforcers.alt) ->
        (* exact for the same memoization reason as implementation
           children; the enforcer node itself is bound-filtered below *)
        match
          optimize_group t g (Extreq.with_req extreq alt.Enforcers.inner)
        with
          | None -> None
          | Some inner ->
              let node = mk_plan t g alt.Enforcers.op [ inner ] in
              if valid_candidate req node then begin
                if Sobs.Trace.enabled () then
                  Sobs.Trace.instant ~pid:(Sobs.Trace.pid_of_phase t.phase)
                    ~args:
                      [
                        ("group", Sobs.Trace.Int g.Smemo.Memo.id);
                        ("op", Sobs.Trace.Str (Physop.to_string alt.Enforcers.op));
                      ]
                    "enforcer";
                if bounded then note_candidate node else Some node
              end
              else None)
      (Enforcers.alternatives req)
  in
  let result = cheapest t (impl_candidates @ enforcer_candidates) in
  t.tainted <-
    !skipped
    && (match result with None -> true | Some p -> plan_cost t p > bound);
  result

(* Entry point: optimize the whole memo for the current phase. *)
let optimize_root t =
  optimize_group t (Smemo.Memo.root_group t.memo) (Extreq.plain Reqprops.none)
