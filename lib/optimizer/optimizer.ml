open Sphys

(* The Cascades-style optimization engine (Algorithm 2 / Algorithm 5).

   [optimize_group] memoizes a winner per (phase, extended requirement).
   The engine is extended -- not modified -- by the CSE framework through
   the [ext] hook record: recording the property history of shared groups
   (Section V), overriding the requirements of shared children and
   propagating enforcement maps (Algorithm 5), and intercepting
   optimization at LCA groups to run re-optimization rounds
   (Algorithm 4). *)

type t = {
  memo : Smemo.Memo.t;
  cluster : Scost.Cluster.t;
  budget : Budget.t;
  mutable phase : int;
  ext : ext;
}

and ext = {
  (* called once per fresh (group, requirement) optimization; phase-1 CSE
     history recording hooks in here *)
  before_optimize : t -> Smemo.Memo.group -> Extreq.t -> unit;
  (* Algorithm 5, lines 9-17: build the child's extended requirement from
     the conventional DetChildProp result and the parent's enforcement
     map *)
  child_extreq :
    t -> child:Smemo.Memo.group -> Reqprops.t -> Extreq.t -> Extreq.t;
  (* Algorithm 4, lines 4-12: a [Some result] bypasses the default
     optimization (used for LCA rounds and pinned shared groups) *)
  intercept :
    t ->
    Smemo.Memo.group ->
    Extreq.t ->
    self:(Smemo.Memo.group -> Extreq.t -> Plan.t option) ->
    log_phys_opt:(Smemo.Memo.group -> Extreq.t -> Plan.t option) ->
    Plan.t option option;
  (* called when a winner is recorded (frequency statistics, VIII-C) *)
  after_winner : t -> Smemo.Memo.group -> Extreq.t -> Plan.t option -> unit;
}

let default_ext =
  {
    before_optimize = (fun _ _ _ -> ());
    child_extreq = (fun _ ~child:_ creq _ -> Extreq.plain creq);
    intercept = (fun _ _ _ ~self:_ ~log_phys_opt:_ -> None);
    after_winner = (fun _ _ _ _ -> ());
  }

let create ?(ext = default_ext) ?(budget = Budget.unlimited ())
    ~(cluster : Scost.Cluster.t) (memo : Smemo.Memo.t) =
  { memo; cluster; budget; phase = 1; ext }

(* Winner-table key: the interned requirement id packed with the phase
   (1 or 2).  [extreq] must already be normalized -- [optimize_group]
   normalizes once at entry. *)
let winner_key t extreq = (Intern.id extreq lsl 2) lor t.phase

let winner_hits = Sutil.Counters.counter "optimizer.winner_hits"
let winner_misses = Sutil.Counters.counter "optimizer.winner_misses"
let ticks = Sutil.Counters.counter "optimizer.tasks"

(* Build a plan node for [op] over [children] in group [g]. *)
let mk_plan t (g : Smemo.Memo.group) op children =
  let stats = g.Smemo.Memo.stats in
  let op_cost = Scost.Costmodel.op_cost t.cluster op children ~out:stats in
  Plan.make ~op ~children ~group:g.Smemo.Memo.id ~schema:g.Smemo.Memo.schema
    ~stats ~op_cost

let plan_cost t p = Scost.Dagcost.cached_cost t.cluster p

(* On spool-free plans the cached region cost is bit-for-bit the walking
   cost; only spool-bearing plans can disagree in the last ulps because
   the closure sums in a different order. *)
let exactly_walked (p : Plan.t) =
  p.Plan.srefs = [] && p.Plan.op <> Physop.P_spool

(* Is [p] strictly cheaper than [q]?  Far-apart costs are decided on the
   cached values; near-ties between spool-bearing plans (within 1e-9
   relative, ulp-noise territory for either summation order) are decided
   on the walking cost, so plan choices are identical to walking-cost
   comparison. *)
let cost_lt t ((p : Plan.t), c) ((q : Plan.t), qc) =
  let scale = Float.max 1.0 (Float.max (Float.abs c) (Float.abs qc)) in
  if Float.abs (c -. qc) > 1e-9 *. scale then c < qc
  else if exactly_walked p && exactly_walked q then c < qc
  else Scost.Dagcost.cost t.cluster p < Scost.Dagcost.cost t.cluster q

(* [p] no costlier than [q], under the same near-tie rules. *)
let plan_le t p q = not (cost_lt t (q, plan_cost t q) (p, plan_cost t p))

(* Each candidate is costed exactly once: the fold carries the running
   best as a (plan, cost) pair instead of re-costing it per comparison. *)
let cheapest t plans =
  List.fold_left
    (fun best p ->
      let c = plan_cost t p in
      match best with
      | None -> Some (p, c)
      | Some pc -> if cost_lt t (p, c) pc then Some (p, c) else best)
    None plans
  |> Option.map fst

(* A candidate is kept only if the operator's own input requirements hold
   against the children actually delivered (enforcement may have overridden
   what was requested) and the delivered properties satisfy the caller's
   requirement. *)
let valid_candidate (req : Reqprops.t) (node : Plan.t) =
  Plan_check.check_op node = [] && Reqprops.satisfied node.Plan.props req

let rec optimize_group t (g : Smemo.Memo.group) (extreq : Extreq.t) :
    Plan.t option =
  let extreq = Extreq.normalize extreq in
  let key = winner_key t extreq in
  match Hashtbl.find_opt g.Smemo.Memo.winners key with
  | Some w ->
      Atomic.incr winner_hits;
      w.Smemo.Memo.wplan
  | None ->
      Atomic.incr winner_misses;
      Atomic.incr ticks;
      Budget.tick t.budget;
      (* span only on the miss path: hits are the memoized fast path and
         would dominate the trace without saying where time went *)
      let traced = Sobs.Trace.enabled () in
      let pid = Sobs.Trace.pid_of_phase t.phase in
      if traced then
        Sobs.Trace.begin_span ~pid
          ~args:[ ("group", Sobs.Trace.Int g.Smemo.Memo.id) ]
          "OptimizeGroup";
      t.ext.before_optimize t g extreq;
      let result =
        match
          t.ext.intercept t g extreq ~self:(optimize_group t)
            ~log_phys_opt:(log_phys_opt t)
        with
        | Some r -> r
        | None -> log_phys_opt t g extreq
      in
      Hashtbl.replace g.Smemo.Memo.winners key
        {
          Smemo.Memo.wphase = t.phase;
          wreq = extreq.Extreq.req;
          wenforce = extreq.Extreq.enforce;
          wplan = result;
        };
      t.ext.after_winner t g extreq result;
      if traced then Sobs.Trace.end_span ~pid "OptimizeGroup";
      result

(* Logical exploration + physical optimization of one group under one
   requirement (the body of Algorithm 5). *)
and log_phys_opt t (g : Smemo.Memo.group) (extreq : Extreq.t) : Plan.t option
    =
  Rules.explore t.memo g ~phase:t.phase;
  let req = extreq.Extreq.req in
  let impl_candidates =
    List.concat_map
      (fun (e : Smemo.Memo.mexpr) ->
        List.filter_map
          (fun (alt : Impl.alt) ->
            let children =
              List.map2
                (fun cgid creq ->
                  let child = Smemo.Memo.group t.memo cgid in
                  let cext = t.ext.child_extreq t ~child creq extreq in
                  optimize_group t child cext)
                e.Smemo.Memo.children alt.Impl.child_reqs
            in
            if List.for_all Option.is_some children then
              let node = mk_plan t g alt.Impl.op (List.map Option.get children) in
              if valid_candidate req node then Some node else None
            else None)
          (Impl.alternatives e req))
      (Smemo.Memo.exprs g)
  in
  let enforcer_candidates =
    List.filter_map
      (fun (alt : Enforcers.alt) ->
        match
          optimize_group t g (Extreq.with_req extreq alt.Enforcers.inner)
        with
        | None -> None
        | Some inner ->
            let node = mk_plan t g alt.Enforcers.op [ inner ] in
            if valid_candidate req node then begin
              if Sobs.Trace.enabled () then
                Sobs.Trace.instant ~pid:(Sobs.Trace.pid_of_phase t.phase)
                  ~args:
                    [
                      ("group", Sobs.Trace.Int g.Smemo.Memo.id);
                      ("op", Sobs.Trace.Str (Physop.to_string alt.Enforcers.op));
                    ]
                  "enforcer";
              Some node
            end
            else None)
      (Enforcers.alternatives req)
  in
  cheapest t (impl_candidates @ enforcer_candidates)

(* Entry point: optimize the whole memo for the current phase. *)
let optimize_root t =
  optimize_group t (Smemo.Memo.root_group t.memo) (Extreq.plain Reqprops.none)
