open Sphys

(* Extended required properties (Section VII): the conventional requirement
   plus [PropForSharedGrps] -- the property sets to be enforced at shared
   groups encountered below, keyed by group id. *)

type t = { req : Reqprops.t; enforce : (int * Reqprops.t) list }

let plain req = { req; enforce = [] }

let normalize t =
  { t with enforce = List.sort_uniq Stdlib.compare t.enforce }

let enforcement t gid = List.assoc_opt gid t.enforce

let with_req t req = { t with req }

let pp ppf t =
  Fmt.pf ppf "%a" Reqprops.pp t.req;
  if t.enforce <> [] then
    Fmt.pf ppf " enforce{%s}"
      (String.concat "; "
         (List.map
            (fun (g, p) -> Fmt.str "%d↦%a" g Reqprops.pp p)
            t.enforce))

let to_string t = Fmt.str "%a" pp t
