open Sphys

(* Re-optimization round generation (Algorithm 4, line 7, plus the
   Section VIII refinements).

   A *round* is one complete assignment of a property set to every shared
   group handled at this LCA.  Within an independence class the full
   cartesian product is enumerated -- lazily, by mixed-radix decoding, so a
   dependent class of many groups (whose product can exceed 10^18) costs
   nothing until rounds are actually drawn and the optimization budget cuts
   enumeration off.  The first (highest-ranked) group varies fastest.

   Across independent classes (VIII-A) enumeration is sequential: once a
   class is exhausted its best assignment is frozen and the next class is
   explored around it.  Later classes skip their all-initial combination --
   it was already evaluated while the previous classes varied. *)

type assignment = (int * Reqprops.t) list

type cls = { members : (int * Reqprops.t array) array; total : int }

type state = {
  classes : cls array;
  mutable class_idx : int;
  mutable next_combo : int; (* mixed-radix index into the current class *)
  mutable fixed : assignment; (* frozen best of completed classes *)
  mutable class_best : (float * assignment) option;
  mutable outstanding : assignment option; (* combo awaiting report *)
  mutable generated : int;
}

(* Saturating product, so 14^17-sized spaces do not overflow. *)
let sat_mul a b =
  if a = 0 || b = 0 then 0
  else if a > max_int / b then max_int
  else a * b

let mk_cls (members : (int * Reqprops.t list) list) : cls =
  let members =
    Array.of_list (List.map (fun (g, ps) -> (g, Array.of_list ps)) members)
  in
  let total =
    Array.fold_left (fun acc (_, ps) -> sat_mul acc (Array.length ps)) 1 members
  in
  { members; total }

(* Decode combination [i] of a class: member 0 varies fastest. *)
let combo_of_index (c : cls) i : assignment =
  let rec go j i acc =
    if j >= Array.length c.members then List.rev acc
    else
      let g, ps = c.members.(j) in
      let k = i mod Array.length ps in
      go (j + 1) (i / Array.length ps) ((g, ps.(k)) :: acc)
  in
  go 0 i []

let initial_of (c : cls) : assignment =
  Array.to_list (Array.map (fun (g, ps) -> (g, ps.(0))) c.members)

let create (classes : (int * Reqprops.t list) list list) : state =
  let classes =
    classes
    |> List.filter (fun c -> c <> [])
    |> List.filter (fun c -> List.for_all (fun (_, ps) -> ps <> []) c)
    |> List.map mk_cls
  in
  {
    classes = Array.of_list classes;
    class_idx = 0;
    (* classes after the first skip index 0 (the all-initial combination,
       already evaluated while earlier classes varied) *)
    next_combo = 0;
    fixed = [];
    class_best = None;
    outstanding = None;
    generated = 0;
  }

(* Initial assignments of the classes after the current one. *)
let later_initials t =
  let acc = ref [] in
  for i = Array.length t.classes - 1 downto t.class_idx + 1 do
    acc := initial_of t.classes.(i) @ !acc
  done;
  !acc

let rec next (t : state) : assignment option =
  assert (t.outstanding = None);
  if Array.length t.classes = 0 then None
  else
    let c = t.classes.(t.class_idx) in
    if t.next_combo < c.total then begin
      let combo = combo_of_index c t.next_combo in
      t.next_combo <- t.next_combo + 1;
      t.outstanding <- Some combo;
      t.generated <- t.generated + 1;
      Some (t.fixed @ combo @ later_initials t)
    end
    else if t.class_idx + 1 >= Array.length t.classes then None
    else begin
      let best_combo =
        match t.class_best with Some (_, cb) -> cb | None -> initial_of c
      in
      t.fixed <- t.fixed @ best_combo;
      t.class_best <- None;
      t.class_idx <- t.class_idx + 1;
      t.next_combo <- 1 (* skip the already-evaluated all-initial combo *);
      next t
    end

(* Report the cost achieved by the combo returned by the last [next]. *)
let report (t : state) ~cost =
  match t.outstanding with
  | None -> invalid_arg "Rounds.report: no outstanding round"
  | Some combo ->
      t.outstanding <- None;
      (match t.class_best with
      | Some (c, _) when c <= cost -> ()
      | _ -> t.class_best <- Some (cost, combo))

let generated t = t.generated

(* Branch-and-bound support: whether the enumeration is in its final
   class.  Earlier classes still steer (their best combo gets frozen), so
   phase 2 may only bound them against their own class best; the last
   class's best is never consumed and can be bounded by the global
   incumbent. *)
let last_class t =
  Array.length t.classes = 0 || t.class_idx >= Array.length t.classes - 1

(* Best cost reported within the current class so far (None right after a
   class switch). *)
let class_best_cost t =
  match t.class_best with Some (c, _) -> Some c | None -> None

let class_sizes (classes : (int * Reqprops.t list) list list) =
  List.map
    (fun cls ->
      List.fold_left (fun acc (_, ps) -> sat_mul acc (max 1 (List.length ps))) 1 cls)
    classes

(* Round count without the VIII-A decomposition: the full product over
   every shared group (saturating). *)
let naive_total (classes : (int * Reqprops.t list) list list) =
  List.fold_left sat_mul 1 (class_sizes classes)

(* Round count with the decomposition: the first class contributes its full
   product, later classes their product minus the already-evaluated
   all-initial combination. *)
let sequential_total (classes : (int * Reqprops.t list) list list) =
  match class_sizes classes with
  | [] -> 0
  | first :: rest -> first + List.fold_left (fun acc n -> acc + n - 1) 0 rest
