(* Algorithm 1: IdentifyCommonSubexpressions.

   1. Merge structurally equal subexpressions found via fingerprint
      collisions (each class keeps its lowest-id representative; consumers
      of the duplicates are redirected).  Because groups are numbered
      children-first, a bottom-up sweep merges leaves before the parents
      that then become equal through the redirected children.
   2. Every group referenced by more than one (reachable) parent gets a
      SPOOL group on top; all consumers are re-pointed to the spool, which
      is marked as shared.

   Returns the descriptor list of the shared groups found. *)

type shared = {
  spool : int; (* the spool group (the one marked shared) *)
  under : int; (* the group being materialized *)
  initial_consumers : int; (* distinct parents at identification time *)
}

let insert_spool (memo : Smemo.Memo.t) gid ~consumers =
  let g = Smemo.Memo.group memo gid in
  let spool =
    Smemo.Memo.add_group memo
      { Smemo.Memo.mop = Slogical.Logop.Spool; children = [ gid ] }
      g.Smemo.Memo.schema
  in
  Smemo.Memo.redirect memo ~from_:gid ~to_:spool.Smemo.Memo.id
    ~except:spool.Smemo.Memo.id;
  spool.Smemo.Memo.shared <- true;
  { spool = spool.Smemo.Memo.id; under = gid; initial_consumers = consumers }

let identify ?(config = Config.default) (memo : Smemo.Memo.t) : shared list =
  (* --- fingerprint merge of equal subexpressions ---------------------- *)
  if config.Config.use_fingerprints then begin
    let fps = Fingerprint.of_memo memo in
    (* bucket reachable groups by fingerprint *)
    let buckets : (int, int list) Hashtbl.t = Hashtbl.create 64 in
    let live = Smemo.Memo.reachable memo in
    Smemo.Memo.iter_groups memo (fun g ->
        let gid = g.Smemo.Memo.id in
        if live.(gid) then
          match Hashtbl.find_opt fps gid with
          | Some f ->
              Hashtbl.replace buckets f
                (gid :: Option.value ~default:[] (Hashtbl.find_opt buckets f))
          | None -> ());
    let merged : (int, int) Hashtbl.t = Hashtbl.create 8 in
    (* bottom-up: group ids are topological (children first) *)
    Hashtbl.iter
      (fun _ gids ->
        let gids = List.sort Int.compare gids in
        match gids with
        | [] | [ _ ] -> ()
        | rep0 :: rest ->
            (* several colliding entries: structural comparison decides *)
            let reps = ref [ rep0 ] in
            List.iter
              (fun gid ->
                match
                  List.find_opt (fun r -> Fingerprint.equal_subexpr memo r gid) !reps
                with
                | Some rep -> Hashtbl.replace merged gid rep
                | None -> reps := !reps @ [ gid ])
              rest)
      buckets;
    (* apply merges lowest-duplicate first so redirects compose *)
    let pairs =
      Hashtbl.fold (fun d r acc -> (d, r) :: acc) merged []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    in
    List.iter
      (fun (dup, rep) ->
        Smemo.Memo.redirect memo ~from_:dup ~to_:rep ~except:rep)
      pairs
  end;
  (* --- explicit sharing: spool every multi-consumer group -------------- *)
  let parents = Smemo.Memo.parents memo in
  let shared = ref [] in
  let original_count = Array.length parents in
  for gid = 0 to original_count - 1 do
    let g = Smemo.Memo.group memo gid in
    let n = List.length parents.(gid) in
    let es = Smemo.Memo.exprs g in
    if n > 1 && es <> [] then begin
      match (List.hd es).Smemo.Memo.mop with
      | Slogical.Logop.Spool -> g.Smemo.Memo.shared <- true
      | _ -> shared := insert_spool memo gid ~consumers:n :: !shared
    end
  done;
  List.rev !shared
