(** End-to-end facade: script text in, optimized plans out.

    Runs both optimizers over the same script, catalog and cluster:
    {e conventional} — the unmodified engine on a spool-free memo, where a
    shared relation executes once per consumer (Figure 8(a)); and {e CSE} —
    Algorithm 1 spool insertion, phase 1 with history recording,
    Algorithm 3, and the phase-2 re-optimization (Figure 8(b)). *)

(** Execution summary handed over by callers that run plans (this module
    does not depend on the executor): domain-pool width, execution wall
    seconds, and per-worker busy seconds. *)
type exec_summary = {
  workers : int;
  batch_size : int;  (** executor batch granularity (max rows per batch) *)
  batches : int;  (** batches across the run's committed stage outputs *)
  wall_s : float;
  busy_s : float array;
}

(** Fraction of the pool's wall-time capacity spent inside tasks, in
    [0, 1]: total busy seconds over [wall_s * #workers]. *)
val utilization : exec_summary -> float

type report = {
  script : string;
  dag : Slogical.Dag.t;
  conventional_plan : Sphys.Plan.t;
  conventional_cost : float;
  conventional_time : float;
  conventional_tasks : int;
  cse_plan : Sphys.Plan.t;
  cse_cost : float;
  cse_time : float;
  cse_tasks : int;
  budget_exhausted : bool;
      (** the optimization budget ran out: the CSE plan may be the phase-1
          shape, materializing a shared group once per distinct property
          requirement (the Figure 8(a) baseline) *)
  phase1_plan : Sphys.Plan.t;
  memo : Smemo.Memo.t;  (** the CSE memo (with spools) *)
  shared : Spool.shared list;
  lcas : (int * int) list;  (** shared group -> its LCA group *)
  rounds_executed : int;
  rounds_naive : int;
  rounds_sequential : int;
  rounds_pruned : int;
      (** sequential rounds removed by dominance filtering of candidates *)
  rounds_aborted_bound : int;
      (** rounds cut short by the branch-and-bound incumbent check *)
  phase2_winner_reuse_hits : int;
      (** winner-cache hits during phase 2 (cross-round reuse) *)
  history_sizes : (int * int) list;  (** shared group -> #property sets *)
  candidate_props : (int * Sphys.Reqprops.t list) list;
      (** shared group -> phase-2 candidate property sets after dominance
          filtering, in round order *)
  pruned_props : (int * (Sphys.Reqprops.t * Sphys.Reqprops.t) list) list;
      (** shared group -> (dropped candidate, kept dominator) pairs; the
          SA060 audit re-verifies each pair against {!History.dominates} *)
  shared_info : Shared_info.t;
  counters : (string * int) list;
      (** hot-path counter deltas over this run ([Sutil.Counters]): winner
          hits/misses, optimizer tasks, intern hits/misses — by name.  The
          execution engine's [exec.*] counters (stages, vertices, retries,
          recomputed rows) land in the same registry when plans run. *)
  mutable exec : exec_summary option;
      (** execution summary of the CSE plan, filled in by callers that
          actually run it ([scopeopt run], the bench harness) so the
          JSON report and [bench/compare] can consume utilization and
          wall time; [None] when the plans were only optimized *)
}

(** Named-counter deltas as one "counters: name=value; ..." line. *)
val pp_counters : (string * int) list Fmt.t

(** One "exec: workers=N wall=..ms busy=[..] util=..%" line. *)
val pp_exec : exec_summary Fmt.t

(** Narrative of the four optimization steps (Figure 2 of the paper). *)
val pp_steps : report Fmt.t

(** [cse_cost / conventional_cost]. *)
val ratio : report -> float

(** Cost reduction in percent, as reported in Figure 7. *)
val reduction_percent : report -> float

exception No_plan of string

(** Parse, bind and optimize a script both ways.
    Raises [Slang.Parser.Error], [Slang.Lexer.Error], [Slogical.Binder.Error]
    on bad input and {!No_plan} if optimization fails. *)
val run :
  ?config:Config.t ->
  ?budget:Sopt.Budget.t ->
  ?cluster:Scost.Cluster.t ->
  catalog:Relalg.Catalog.t ->
  string ->
  report
