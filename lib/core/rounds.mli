(** Re-optimization round generation (Algorithm 4, line 7, plus the
    Section VIII refinements).

    A round is one complete assignment of a property set to every shared
    group handled at an LCA. Within an independence class the cartesian
    product is enumerated lazily (mixed-radix decoding; a dependent class's
    product can exceed 10^18 and is cut off by the optimization budget),
    the first group varying fastest. Across classes enumeration is
    sequential (VIII-A): a finished class freezes its best assignment;
    later classes skip their already-evaluated all-initial combination. *)

type assignment = (int * Sphys.Reqprops.t) list

type state

(** [create classes] with [classes] a list of independence classes, each a
    list of (shared group, its ranked property sets). Empty classes and
    groups without properties are dropped. *)
val create : (int * Sphys.Reqprops.t list) list list -> state

(** Next full assignment (over every group of every class), or [None] when
    exhausted. Every [next] must be followed by {!report}. *)
val next : state -> assignment option

(** Report the cost achieved by the assignment from the last {!next}
    (drives the best-of-class selection). *)
val report : state -> cost:float -> unit

(** Assignments generated so far. *)
val generated : state -> int

(** Is the enumeration in its final independence class? Earlier classes
    still steer the sequential search (their best combo is frozen), so
    callers may only bound their rounds class-locally; the last class's
    best is never consumed. *)
val last_class : state -> bool

(** Best cost reported within the current class so far ([None] right
    after a class switch). *)
val class_best_cost : state -> float option

(** Round count without VIII-A: the saturated full product. *)
val naive_total : (int * Sphys.Reqprops.t list) list list -> int

(** Round count with VIII-A: first class in full, later classes minus the
    all-initial combination. *)
val sequential_total : (int * Sphys.Reqprops.t list) list list -> int
