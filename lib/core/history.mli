(** Section V: the property history of shared groups.

    Every phase-1 request at a shared group is recorded; a partitioning
    {e range} [∅, C] is expanded into one entry per concrete subset (the
    paper expands [∅,\{A,B,C\}] into its seven non-empty subsets), bounded
    for wide column sets. Entries carry a frequency counter (Section
    VIII-C): how often they described a best local plan in phase 1. *)

type entry = { props : Sphys.Reqprops.t; mutable freq : int }

type t

val create : Config.t -> t

(** Recorded entries of a shared group, in first-recorded order. *)
val entries : t -> int -> entry list

(** Expansion of one requirement into concrete enforceable entries. *)
val expand : Config.t -> Sphys.Reqprops.t -> Sphys.Reqprops.t list

(** Record one phase-1 request (expanded, deduplicated). *)
val record : t -> int -> Sphys.Reqprops.t -> unit

(** Credit the entries matched by a phase-1 winner's delivered
    properties. *)
val note_best : t -> int -> Sphys.Plan.t option -> unit

(** Property sets for round generation: best-ranked first when VIII-C is
    enabled, capped when configured. *)
val ranked_properties : t -> int -> Sphys.Reqprops.t list

(** [dominates ~by p]: pinning [by] can never lose to pinning [p] — same
    concrete (non-[Any]) partitioning, [p]'s sort a non-empty strict
    prefix of [by]'s.  Sort production cost is key-independent in the cost
    model, so the longer order satisfies (by prefix closure) every
    consumer [p] could satisfy at equal enforcement cost. *)
val dominates : by:Sphys.Reqprops.t -> Sphys.Reqprops.t -> bool

(** {!ranked_properties} after dominance filtering: kept property sets in
    ranked order, plus each dropped set paired with the kept candidate
    that dominates it.  With [use_dominance_pruning] off, everything is
    kept. *)
val candidates :
  t -> int -> Sphys.Reqprops.t list * (Sphys.Reqprops.t * Sphys.Reqprops.t) list
