(* Configuration of the CSE optimization framework.  The three [use_*]
   flags correspond to the Section VIII extensions for large scripts and
   can be toggled independently for the ablation benchmarks. *)

type t = {
  use_fingerprints : bool;
      (* merge structurally equal subexpressions (Algorithm 1, lines 2-11);
         explicit sharing is always detected *)
  use_independent_groups : bool; (* Section VIII-A *)
  use_group_ranking : bool; (* Section VIII-B *)
  use_property_ranking : bool; (* Section VIII-C *)
  subset_expansion_cap : int;
      (* partitioning ranges over more columns than this are expanded to
         the full set, singletons and pairs instead of all subsets
         (Section V expansion, bounded for wide keys) *)
  max_properties_per_group : int option;
      (* optional cap on the per-shared-group history used for rounds *)
  use_dominance_pruning : bool;
      (* drop round candidates dominated by a kept candidate with the same
         partitioning and a strictly stronger sort at equal enforcement
         cost (see DESIGN.md, round pruning) *)
  use_round_bound : bool;
      (* branch-and-bound early exit: abort a re-optimization round once
         its accumulated lower bound exceeds the incumbent round cost *)
  use_slice_reuse : bool;
      (* key pinned-shared-group winners on the enforcement slice visible
         below the group, so unrelated assignment changes between rounds
         still hit the winner cache *)
  audit : bool;
      (* ask harnesses (tests, bench, CLI) to run the full static-analysis
         audit on every optimized plan; the pipeline itself cannot run it
         (the analysis library sits above this one), so callers honor it *)
}

let default =
  {
    use_fingerprints = true;
    use_independent_groups = true;
    use_group_ranking = true;
    use_property_ranking = true;
    subset_expansion_cap = 4;
    max_properties_per_group = None;
    use_dominance_pruning = true;
    use_round_bound = true;
    use_slice_reuse = true;
    audit = false;
  }

(* Base framework with every large-script extension disabled. *)
let no_extensions =
  {
    default with
    use_independent_groups = false;
    use_group_ranking = false;
    use_property_ranking = false;
  }

(* Exhaustive phase-2 enumeration: every pruning layer off (the --no-prune
   ablation).  Chosen plans must be byte-identical to [default]. *)
let no_pruning c =
  {
    c with
    use_dominance_pruning = false;
    use_round_bound = false;
    use_slice_reuse = false;
  }
