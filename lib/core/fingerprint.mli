(** Expression fingerprints (Section IV, Definition 1):

    {v
F(E) = FileID mod N                          if E reads a file
F(E) = (OpID xor (xor_i F(child_i))) mod N   otherwise
    v}

    As in the paper, [OpID] identifies only the operator kind, so equal
    fingerprints are necessary-but-not-sufficient and colliding candidates
    are verified structurally (Algorithm 1, line 5). *)

(** The prime modulus [N] (2^61 - 1). *)
val modulus : int

val file_id : string -> int
val op_id : Slogical.Logop.t -> int

(** Fingerprint of an arbitrary string in the same [0, modulus) space as
    the expression fingerprints: two independent polynomial hashes over
    sub-2{^30} primes, recombined — overflow-free on 63-bit ints.  The
    serve-mode plan cache keys on [hash_string] of the normalized script
    text (plus the catalog version). *)
val hash_string : string -> int

(** Fingerprints of every reachable group, computed bottom-up from each
    group's single initial expression. *)
val of_memo : Smemo.Memo.t -> (int, int) Hashtbl.t

(** Structural equality of two memo subexpressions (operators compared
    with full parameters, children recursively). *)
val equal_subexpr : Smemo.Memo.t -> int -> int -> bool
