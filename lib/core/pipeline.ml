open Sphys

(* End-to-end facade: script text in, optimized plans out.

   Runs both optimizers over the same script, catalog and cluster:
   - *conventional*: the unmodified engine on a spool-free memo; a shared
     relation is optimized per consumer requirement and the final plan
     executes it once per consumer (Figure 8(a));
   - *CSE*: Algorithm 1 spool insertion, phase 1 with history recording,
     Algorithm 3, and the phase-2 re-optimization (Figure 8(b)). *)

(* Plain execution-summary data: this module cannot depend on the
   executor (cse sits below sexec in the library order), so callers that
   run plans hand the figures over and share one output format. *)
type exec_summary = {
  workers : int;  (* executor domain-pool width *)
  batch_size : int;  (* executor batch granularity (max rows per batch) *)
  batches : int;  (* batches across the run's committed stage outputs *)
  wall_s : float;  (* execution wall-clock seconds *)
  busy_s : float array;  (* per-worker seconds spent executing *)
}

(* Fraction of the pool's total wall-time capacity spent inside tasks,
   in [0, 1]. *)
let utilization (e : exec_summary) =
  let busy_total = Array.fold_left ( +. ) 0.0 e.busy_s in
  if e.wall_s > 0.0 && Array.length e.busy_s > 0 then
    busy_total /. (e.wall_s *. float_of_int (Array.length e.busy_s))
  else 0.0

type report = {
  script : string;
  dag : Slogical.Dag.t;
  (* conventional optimization *)
  conventional_plan : Plan.t;
  conventional_cost : float;
  conventional_time : float;
  conventional_tasks : int;
  (* CSE optimization *)
  cse_plan : Plan.t;
  cse_cost : float;
  cse_time : float;
  cse_tasks : int;
  budget_exhausted : bool;
  phase1_plan : Plan.t;
  memo : Smemo.Memo.t;
  shared : Spool.shared list;
  lcas : (int * int) list; (* shared group -> LCA group *)
  rounds_executed : int;
  rounds_naive : int;
  rounds_sequential : int;
  rounds_pruned : int;
  (* sequential rounds removed by dominance filtering of candidates *)
  rounds_aborted_bound : int;
  (* rounds cut short by the branch-and-bound incumbent check *)
  phase2_winner_reuse_hits : int;
  (* winner-cache hits during phase 2 (cross-round reuse) *)
  history_sizes : (int * int) list; (* shared group -> #property sets *)
  candidate_props : (int * Sphys.Reqprops.t list) list;
  (* shared group -> phase-2 candidate property sets after dominance
     filtering, in round order *)
  pruned_props : (int * (Sphys.Reqprops.t * Sphys.Reqprops.t) list) list;
  (* shared group -> (dropped, kept dominator) pairs (SA060 audits them) *)
  shared_info : Shared_info.t;
  counters : (string * int) list;
  (* hot-path counter deltas over this run (Sutil.Counters), by name *)
  mutable exec : exec_summary option;
  (* filled in by callers that execute the CSE plan, so downstream
     consumers (JSON report, bench comparison) see utilization and
     wall time instead of a print-only summary *)
}

(* Named-counter deltas, one "name=value" list on a line.  Shared by
   [pp_steps] and the CLI's execution report, which prints the engine's
   [exec.*] counters through the same formatter. *)
let pp_counters ppf (counters : (string * int) list) =
  Fmt.pf ppf "counters: %s@."
    (String.concat "; "
       (List.map (fun (n, v) -> Fmt.str "%s=%d" n v) counters))

let pp_exec ppf (e : exec_summary) =
  let util = 100.0 *. utilization e in
  Fmt.pf ppf
    "exec: workers=%d batch_size=%d batches=%d wall=%.2fms busy=[%s] \
     util=%.0f%%@."
    e.workers e.batch_size e.batches
    (1000.0 *. e.wall_s)
    (String.concat " "
       (Array.to_list
          (Array.map (fun b -> Fmt.str "%.2fms" (1000.0 *. b)) e.busy_s)))
    util

(* Narrative of the four optimization steps (Figure 2 of the paper), for
   the CLI's explain output and for humans reading test failures. *)
let pp_steps ppf (r : report) =
  Fmt.pf ppf "Step 1 — identify common subexpressions (Algorithm 1):@.";
  if r.shared = [] then Fmt.pf ppf "  none found; phase 2 is a no-op@."
  else
    List.iter
      (fun (s : Spool.shared) ->
        Fmt.pf ppf "  spool group %d over group %d, %d consumers@."
          s.Spool.spool s.Spool.under s.Spool.initial_consumers)
      r.shared;
  Fmt.pf ppf "Step 2 — phase-1 property history (Section V):@.";
  List.iter
    (fun (g, n) -> Fmt.pf ppf "  shared group %d: %d property sets@." g n)
    r.history_sizes;
  Fmt.pf ppf "Step 3 — shared-group propagation and LCAs (Algorithm 3):@.";
  List.iter
    (fun (s, l) ->
      Fmt.pf ppf "  shared group %d: consumers {%s}, LCA = group %d%s@." s
        (String.concat ","
           (List.map string_of_int (Shared_info.consumers r.shared_info s)))
        l
        (if l = r.memo.Smemo.Memo.root then " (the root)" else ""))
    r.lcas;
  Fmt.pf ppf
    "Step 4 — re-optimization with enforcement (Algorithms 4-5): %d rounds \
     executed (full product: %d; VIII-A sequential: %d; dominance-pruned: \
     %d; bound-aborted: %d; phase-2 winner reuse: %d)@."
    r.rounds_executed r.rounds_naive r.rounds_sequential r.rounds_pruned
    r.rounds_aborted_bound r.phase2_winner_reuse_hits;
  Fmt.pf ppf "result: estimated cost %.5g -> %.5g (%.1f%%)@."
    r.conventional_cost r.cse_cost
    (100.0 *. r.cse_cost /. Float.max 1e-9 r.conventional_cost);
  if r.counters <> [] then pp_counters ppf r.counters

let ratio r = if r.conventional_cost = 0.0 then 1.0 else r.cse_cost /. r.conventional_cost

let reduction_percent r = 100.0 *. (1.0 -. ratio r)

exception No_plan of string

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let run ?(config = Config.default) ?budget ?(cluster = Scost.Cluster.default)
    ~(catalog : Relalg.Catalog.t) (script : string) : report =
  let counters_before = Sutil.Counters.baseline () in
  let fe = Sobs.Trace.pid_frontend in
  let ast =
    Sobs.Trace.with_span ~pid:fe "parse" (fun () ->
        Slang.Parser.parse_script script)
  in
  let dag =
    Sobs.Trace.with_span ~pid:fe "bind" (fun () ->
        Slogical.Binder.bind ~catalog ast)
  in
  let machines = cluster.Scost.Cluster.machines in
  (* conventional baseline *)
  let conv_memo =
    Sobs.Trace.with_span ~pid:fe "memo (conventional)" (fun () ->
        Smemo.Memo.of_dag ~catalog ~machines dag)
  in
  let conv_ctx = Sopt.Optimizer.create ~cluster conv_memo in
  let conv_plan, conventional_time =
    timed (fun () ->
        Sobs.Trace.with_span ~pid:Sobs.Trace.pid_phase1 "conventional optimize"
          (fun () -> Sopt.Optimizer.optimize_root conv_ctx))
  in
  let conventional_plan =
    match conv_plan with
    | Some p -> p
    | None -> raise (No_plan "conventional optimization produced no plan")
  in
  (* CSE optimization *)
  let memo =
    Sobs.Trace.with_span ~pid:fe "memo (cse)" (fun () ->
        Smemo.Memo.of_dag ~catalog ~machines dag)
  in
  let shared =
    Sobs.Trace.with_span ~pid:fe "identify shared (Algorithm 1)" (fun () ->
        Spool.identify ~config memo)
  in
  let outcome, cse_time =
    timed (fun () ->
        let budget =
          match budget with
          | Some b -> Some b
          | None -> None
        in
        Phase2.optimize ~config ?budget ~cluster memo)
  in
  let cse_plan =
    match outcome.Phase2.plan with
    | Some p -> p
    | None -> raise (No_plan "CSE optimization produced no plan")
  in
  let phase1_plan =
    match outcome.Phase2.phase1_plan with Some p -> p | None -> cse_plan
  in
  let state = outcome.Phase2.state in
  let si = Phase2.shared_info state in
  let lcas =
    List.filter_map
      (fun (s : Spool.shared) ->
        Option.map (fun l -> (s.Spool.spool, l))
          (Shared_info.lca_of_shared si s.Spool.spool))
      shared
  in
  let history_sizes =
    List.map
      (fun (s : Spool.shared) ->
        ( s.Spool.spool,
          List.length (History.entries state.Phase2.history s.Spool.spool) ))
      shared
  in
  let candidate_props =
    List.map
      (fun (s : Spool.shared) ->
        (s.Spool.spool, fst (History.candidates state.Phase2.history s.Spool.spool)))
      shared
  in
  {
    script;
    dag;
    conventional_plan;
    conventional_cost = Scost.Dagcost.cost cluster conventional_plan;
    conventional_time;
    conventional_tasks = conv_ctx.Sopt.Optimizer.budget.Sopt.Budget.tasks;
    cse_plan;
    cse_cost = Scost.Dagcost.cost cluster cse_plan;
    cse_time;
    cse_tasks = outcome.Phase2.budget.Sopt.Budget.tasks;
    budget_exhausted = Sopt.Budget.exhausted outcome.Phase2.budget;
    phase1_plan;
    memo;
    shared;
    lcas;
    rounds_executed = state.Phase2.rounds_executed;
    rounds_naive = state.Phase2.rounds_naive;
    rounds_sequential = state.Phase2.rounds_sequential;
    rounds_pruned = state.Phase2.rounds_pruned;
    rounds_aborted_bound = state.Phase2.rounds_aborted_bound;
    phase2_winner_reuse_hits = state.Phase2.phase2_winner_reuse_hits;
    history_sizes;
    candidate_props;
    pruned_props = state.Phase2.pruned_props;
    shared_info = si;
    counters = Sutil.Counters.deltas counters_before;
    exec = None;
  }
