(** The re-optimization framework (Algorithms 4 and 5), realized as an
    extension of the generic engine:

    - phase 1 records the property history of shared groups (Section V);
    - the enforcement map propagates downwards, pruned to paths that still
      lead to an enforced shared group (Algorithm 5);
    - at a shared group with a pinned property set, one base plan is
      optimized under the pinned properties — every consumer shares the
      identical materialization — and per-consumer enforcers compensate on
      top (the Sort above the spool in Figure 8(b));
    - at an LCA, one round per property combination runs and the cheapest
      result is kept, subject to the budget (Section VIII controls
      enumeration). *)

type state = {
  config : Config.t;
  history : History.t;
  mutable si : Shared_info.t option;
  mutable rounds_executed : int;
  mutable rounds_naive : int;  (** full-product round count (ablation) *)
  mutable rounds_sequential : int;  (** VIII-A round count, before pruning *)
  mutable rounds_pruned : int;
      (** sequential rounds removed by dominance filtering *)
  mutable rounds_aborted_bound : int;
      (** rounds cut short by the branch-and-bound incumbent check *)
  mutable phase2_winner_reuse_hits : int;
      (** winner-cache hits during phase 2 (cross-round reuse) *)
  mutable pruned_props : (int * (Sphys.Reqprops.t * Sphys.Reqprops.t) list) list;
      (** shared group -> (dropped, kept dominator) pairs (SA060 audit) *)
  mutable lca_sites : int;
}

val create : Config.t -> state

(** The computed shared-group information; raises before phase 2. *)
val shared_info : state -> Shared_info.t

(** The hook record plugging the framework into the engine. *)
val make_ext : state -> Sopt.Optimizer.ext

(** Layer enforcers on a pinned base plan until the requirement holds. *)
val compensate :
  Sopt.Optimizer.t ->
  Smemo.Memo.group ->
  Sphys.Reqprops.t ->
  Sphys.Plan.t ->
  Sphys.Plan.t option

type outcome = {
  plan : Sphys.Plan.t option;  (** best of both phases *)
  phase1_plan : Sphys.Plan.t option;
  state : state;
  budget : Sopt.Budget.t;
}

(** Run both optimization phases over a memo already prepared by
    {!Spool.identify}. *)
val optimize :
  ?config:Config.t ->
  ?budget:Sopt.Budget.t ->
  cluster:Scost.Cluster.t ->
  Smemo.Memo.t ->
  outcome
