(** Configuration of the CSE optimization framework; the [use_*] flags gate
    the Section VIII large-script extensions for ablation. *)

type t = {
  use_fingerprints : bool;
      (** merge structurally equal subexpressions (Algorithm 1, lines
          2-11); explicit sharing is always detected *)
  use_independent_groups : bool;  (** Section VIII-A *)
  use_group_ranking : bool;  (** Section VIII-B *)
  use_property_ranking : bool;  (** Section VIII-C *)
  subset_expansion_cap : int;
      (** ranges over more columns than this expand to full set +
          singletons + adjacent pairs instead of all subsets *)
  max_properties_per_group : int option;
      (** optional cap on the per-shared-group history used for rounds *)
  use_dominance_pruning : bool;
      (** drop round candidates dominated by a kept candidate with the
          same partitioning and a strictly stronger sort at equal
          enforcement cost *)
  use_round_bound : bool;
      (** branch-and-bound early exit: abort a round once its accumulated
          lower bound exceeds the incumbent round cost *)
  use_slice_reuse : bool;
      (** key pinned-shared-group winners on the enforcement slice visible
          below the group (cross-round winner reuse) *)
  audit : bool;
      (** ask harnesses (tests, bench, CLI) to run the full static-analysis
          audit on every optimized plan; honored by the callers since the
          analysis library sits above this one *)
}

(** Everything on; expansion cap 4; no property cap; audit off. *)
val default : t

(** The base framework with all Section VIII extensions disabled. *)
val no_extensions : t

(** [no_pruning c]: [c] with every phase-2 pruning layer disabled — the
    exhaustive enumeration the [--no-prune] ablation runs.  Chosen plans
    must be byte-identical to the pruned run. *)
val no_pruning : t -> t
