open Sphys

(* Section V: recording the physical properties requested at shared groups
   during phase 1.

   A recorded partitioning *range* [∅, C] is expanded into one entry per
   concrete subset (the paper's example expands [∅,{A,B,C}] into its seven
   non-empty subsets), bounded for wide column sets.  Each entry also
   carries a frequency counter (Section VIII-C): the number of times the
   entry described the best local plan found in phase 1. *)

type entry = { props : Reqprops.t; mutable freq : int }

type t = {
  config : Config.t;
  (* shared group id -> recorded entries, in first-recorded order *)
  table : (int, entry list ref) Hashtbl.t;
}

let create config = { table = Hashtbl.create 8; config }

let entries t gid =
  match Hashtbl.find_opt t.table gid with Some l -> !l | None -> []

(* Concrete partition sets for a range requirement, mirroring the enforcer
   candidates so that every recorded entry is actually plannable. *)
let expand_sets config (c : Relalg.Colset.t) =
  if Relalg.Colset.cardinal c <= config.Config.subset_expansion_cap then
    Relalg.Colset.nonempty_subsets c
  else
    let cols = Relalg.Colset.to_list c in
    let singletons = List.map Relalg.Colset.singleton cols in
    let rec pairs = function
      | a :: (b :: _ as rest) -> Relalg.Colset.of_list [ a; b ] :: pairs rest
      | _ -> []
    in
    c :: (singletons @ pairs cols)

let expand config (req : Reqprops.t) : Reqprops.t list =
  match req.Reqprops.part with
  | Reqprops.Hash_subset c ->
      List.map
        (fun s -> Reqprops.make (Reqprops.Hash_exact s) req.Reqprops.sort)
        (expand_sets config c)
  | Reqprops.Any | Reqprops.Serial_req | Reqprops.Hash_exact _ -> [ req ]

(* Record one phase-1 request at a shared group. *)
let record t gid (req : Reqprops.t) =
  let slot =
    match Hashtbl.find_opt t.table gid with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.replace t.table gid l;
        l
  in
  List.iter
    (fun props ->
      if not (List.exists (fun e -> Reqprops.equal e.props props) !slot) then
        slot := !slot @ [ { props; freq = 0 } ])
    (expand t.config req)

(* Section VIII-C: credit the entries matched by the properties a phase-1
   best plan actually delivered. *)
let note_best t gid (plan : Plan.t option) =
  match (plan, Hashtbl.find_opt t.table gid) with
  | Some p, Some slot ->
      let delivered = p.Plan.props in
      List.iter
        (fun e ->
          let part_match =
            match (e.props.Reqprops.part, delivered.Props.part) with
            | Reqprops.Hash_exact s, Partition.Hashed d -> Relalg.Colset.equal s d
            | Reqprops.Any, Partition.Roundrobin -> true
            | Reqprops.Serial_req, Partition.Serial -> true
            | _ -> false
          in
          if
            part_match
            && Sortorder.prefix e.props.Reqprops.sort delivered.Props.sort
          then e.freq <- e.freq + 1)
        !slot
  | _ -> ()

(* Property sets of a shared group for round generation, best-ranked first
   when VIII-C is enabled, capped when configured. *)
let ranked_properties t gid : Reqprops.t list =
  let es = entries t gid in
  let es =
    if t.config.Config.use_property_ranking then
      List.stable_sort (fun a b -> Int.compare b.freq a.freq) es
    else es
  in
  let props = List.map (fun e -> e.props) es in
  match t.config.Config.max_properties_per_group with
  | Some cap -> Sutil.Combi.take cap props
  | None -> props

(* Round-pruning layer 1: dominance between candidate property sets.

   [dominates ~by:q p] holds when q pins the same concrete partitioning as
   p together with a strictly longer sort, p's sort being non-empty.  Then
   pinning q can never lose to pinning p: the cost model prices a sort by
   row count alone (key-independent), so producing q's order at the shared
   group costs the same as producing p's, while by prefix closure every
   consumer requirement satisfied under p's delivery is satisfied under
   q's — any per-consumer compensation needed on top of q is needed, no
   cheaper, on top of p.  [Any] never participates on either side: an
   [Any] pin leaves the delivered partitioning unconstrained, so two
   such candidates are not interchangeable deliveries. *)
let dominates ~(by : Reqprops.t) (p : Reqprops.t) =
  let part_eq =
    match (p.Reqprops.part, by.Reqprops.part) with
    | Reqprops.Hash_exact a, Reqprops.Hash_exact b -> Relalg.Colset.equal a b
    | Reqprops.Serial_req, Reqprops.Serial_req -> true
    | _ -> false
  in
  part_eq
  && (not (Sortorder.is_empty p.Reqprops.sort))
  && Sortorder.prefix p.Reqprops.sort by.Reqprops.sort
  && not (Sortorder.equal p.Reqprops.sort by.Reqprops.sort)

(* Candidates for round generation after dominance filtering: the kept
   property sets (ranked order preserved) and each dropped set paired with
   a kept dominator.  Dominance is a strict partial order (sort length
   strictly increases along a chain), so every dropped candidate has a
   maximal — hence kept — transitive dominator. *)
let candidates t gid : Reqprops.t list * (Reqprops.t * Reqprops.t) list =
  let props = ranked_properties t gid in
  if not t.config.Config.use_dominance_pruning then (props, [])
  else
    let kept, dropped =
      List.partition
        (fun p -> not (List.exists (fun q -> dominates ~by:q p) props))
        props
    in
    let pairs =
      List.map
        (fun p -> (p, List.find (fun q -> dominates ~by:q p) kept))
        dropped
    in
    (kept, pairs)
