(* Expression fingerprints (Section IV, Definition 1).

     F(E) = FileID mod N                      if E reads a file
     F(E) = (OpID xor (xor_i F(child_i))) mod N   otherwise

   As in the paper, OpID identifies only the operator *kind* (all group-bys
   share an OpID), so equal fingerprints are a necessary-but-not-sufficient
   signal and colliding candidates are verified structurally
   (Algorithm 1, line 5). *)

(* Large Mersenne prime: comfortably below OCaml's 63-bit int range and
   large enough that FileIDs and OpIDs cannot collide. *)
let modulus = (1 lsl 61) - 1

let file_id file = (Hashtbl.hash file * 2654435761) land max_int

(* Spread operator-kind ids so that xors of small integers do not collide
   trivially. *)
let op_id op = (Slogical.Logop.op_id op * 0x9E3779B9) land max_int

(* Text fingerprints for the serve-mode plan cache: two independent
   polynomial hashes over sub-2^30 primes (so every intermediate product
   stays well inside the 63-bit native range) recombined into the same
   [modulus] space as the expression fingerprints above. *)
let hp1 = 1_073_741_789
let hp2 = 1_073_741_783

let hash_string s =
  let h1 = ref 17 and h2 = ref 31 in
  String.iter
    (fun ch ->
      let c = Char.code ch in
      h1 := ((!h1 * 131) + c) mod hp1;
      h2 := ((!h2 * 137) + c) mod hp2)
    s;
  ((!h1 * hp2) + !h2) mod modulus

(* Fingerprints of every reachable memo group, computed bottom-up from the
   single initial expression each group holds at this stage. *)
let of_memo (memo : Smemo.Memo.t) : (int, int) Hashtbl.t =
  let fps : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let rec fp gid =
    match Hashtbl.find_opt fps gid with
    | Some f -> f
    | None ->
        let g = Smemo.Memo.group memo gid in
        let e = List.hd (Smemo.Memo.exprs g) in
        let f =
          match e.Smemo.Memo.mop with
          | Slogical.Logop.Extract { file; _ } -> file_id file mod modulus
          | op ->
              let children_xor =
                List.fold_left
                  (fun acc c -> acc lxor fp c)
                  0 e.Smemo.Memo.children
              in
              (op_id op lxor children_xor) mod modulus
        in
        Hashtbl.replace fps gid f;
        f
  in
  ignore (fp memo.Smemo.Memo.root);
  fps

(* Structural equality of two memo subexpressions (the verification step
   for colliding fingerprints).  Operators are compared with their full
   parameters, children recursively. *)
let rec equal_subexpr (memo : Smemo.Memo.t) a b =
  a = b
  ||
  let ga = Smemo.Memo.group memo a and gb = Smemo.Memo.group memo b in
  let ea = List.hd (Smemo.Memo.exprs ga)
  and eb = List.hd (Smemo.Memo.exprs gb) in
  ea.Smemo.Memo.mop = eb.Smemo.Memo.mop
  && List.length ea.Smemo.Memo.children = List.length eb.Smemo.Memo.children
  && List.for_all2 (equal_subexpr memo) ea.Smemo.Memo.children
       eb.Smemo.Memo.children
