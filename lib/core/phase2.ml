open Sphys
open Sopt

(* The re-optimization framework (Algorithms 4 and 5), realized as an
   extension of the generic optimization engine:

   - phase 1 records the property history of shared groups (Section V)
     through [before_optimize]/[after_winner];
   - [child_extreq] propagates the enforcement map downwards, pruned to
     paths that still lead to one of the enforced shared groups
     (Algorithm 5, lines 15-17);
   - [intercept] implements the two special cases of Algorithm 4:
       * at a shared group with a pinned property set, the base plan is
         optimized once under the pinned properties (so every consumer
         shares the identical materialization) and per-consumer enforcers
         are layered on top when the consumer needs more (e.g. the
         Sort(C,B) above the spool in Figure 8(b));
       * at an LCA, one re-optimization round per property combination is
         executed and the cheapest result kept (Section VIII controls how
         combinations are enumerated). *)

let log_src = Logs.Src.create "scopecse.phase2" ~doc:"CSE re-optimization"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Wall time of each re-optimization round, observed only while tracing is
   enabled so the hot loop stays free of per-round clock reads and trace
   allocations on the default path (the lib/obs contract). *)
let round_seconds = Sobs.Hist.hist "opt.round_seconds"

let pp_assignment assignment =
  String.concat "; "
    (List.map
       (fun (s, props) -> Fmt.str "%d -> %a" s Sphys.Reqprops.pp props)
       assignment)

type state = {
  config : Config.t;
  history : History.t;
  mutable si : Shared_info.t option;
  mutable rounds_executed : int;
  mutable rounds_naive : int; (* full-product round count, for ablations *)
  mutable rounds_sequential : int; (* VIII-A round count, before pruning *)
  mutable rounds_pruned : int;
      (* sequential rounds removed by dominance filtering of candidates *)
  mutable rounds_aborted_bound : int;
      (* rounds cut short by the branch-and-bound incumbent check *)
  mutable phase2_winner_reuse_hits : int;
      (* winner-cache hits during phase 2 (cross-round reuse) *)
  mutable pruned_props : (int * (Reqprops.t * Reqprops.t) list) list;
      (* shared group -> (dropped, kept dominator) pairs, for SA060 *)
  mutable lca_sites : int;
}

let create config =
  {
    config;
    history = History.create config;
    si = None;
    rounds_executed = 0;
    rounds_naive = 0;
    rounds_sequential = 0;
    rounds_pruned = 0;
    rounds_aborted_bound = 0;
    phase2_winner_reuse_hits = 0;
    pruned_props = [];
    lca_sites = 0;
  }

let shared_info state =
  match state.si with
  | Some si -> si
  | None -> invalid_arg "Phase2: shared info not computed yet"

(* --- hook implementations --------------------------------------------- *)

let before_optimize state (t : Optimizer.t) (g : Smemo.Memo.group) extreq =
  if t.Optimizer.phase = 1 && g.Smemo.Memo.shared then
    History.record state.history g.Smemo.Memo.id extreq.Extreq.req

let after_winner state (t : Optimizer.t) (g : Smemo.Memo.group) _extreq plan =
  if t.Optimizer.phase = 1 && g.Smemo.Memo.shared then
    History.note_best state.history g.Smemo.Memo.id plan

let child_extreq state (t : Optimizer.t) ~(child : Smemo.Memo.group) creq
    (parent : Extreq.t) =
  if t.Optimizer.phase <> 2 || parent.Extreq.enforce = [] then Extreq.plain creq
  else begin
    let si = shared_info state in
    let cid = child.Smemo.Memo.id in
    let enforce =
      (* prune to paths that still lead to an enforced shared group; keep
         everything for groups unknown to the (pre-phase-2) analysis *)
      if Hashtbl.mem si.Shared_info.info cid then
        let below = Shared_info.shared_below si cid in
        List.filter (fun (gid, _) -> List.mem gid below) parent.Extreq.enforce
      else parent.Extreq.enforce
    in
    { Extreq.req = creq; enforce }
  end

(* Per-consumer compensation above a pinned shared plan: layer enforcers
   until the consumer's original requirement is satisfied. *)
let rec compensate (t : Optimizer.t) (g : Smemo.Memo.group)
    (req : Reqprops.t) (base : Plan.t) : Plan.t option =
  if Reqprops.satisfied base.Plan.props req then Some base
  else
    let candidates =
      List.filter_map
        (fun (alt : Enforcers.alt) ->
          match compensate t g alt.Enforcers.inner base with
          | None -> None
          | Some inner ->
              let node = Optimizer.mk_plan t g alt.Enforcers.op [ inner ] in
              if
                Plan_check.check_op node = []
                && Reqprops.satisfied node.Plan.props req
              then Some node
              else None)
        (Enforcers.alternatives req)
    in
    Optimizer.cheapest t candidates

(* Algorithm 4, lines 4-12: all re-optimization rounds at an LCA. *)
let run_rounds state (t : Optimizer.t) (g : Smemo.Memo.group)
    (extreq : Extreq.t) (to_assign : int list)
    ~(log_phys_opt :
       ?bound:float -> Smemo.Memo.group -> Extreq.t -> Plan.t option) =
  state.lca_sites <- state.lca_sites + 1;
  let si = shared_info state in
  let ordered =
    if state.config.Config.use_group_ranking then
      Rank.order t.Optimizer.cluster t.Optimizer.memo si to_assign
    else to_assign
  in
  let classes =
    if state.config.Config.use_independent_groups then begin
      let cls =
        Independent.classes si t.Optimizer.memo ~l:g.Smemo.Memo.id ordered
      in
      (* order class members and the classes themselves by [ordered] *)
      let pos s =
        let rec idx i = function
          | [] -> max_int
          | x :: rest -> if x = s then i else idx (i + 1) rest
        in
        idx 0 ordered
      in
      List.map
        (fun members ->
          List.stable_sort (fun a b -> Int.compare (pos a) (pos b)) members)
        cls
      |> List.stable_sort (fun a b ->
             Int.compare (pos (List.hd a)) (pos (List.hd b)))
    end
    else [ ordered ]
  in
  let ranked =
    List.map
      (List.map (fun s -> (s, History.ranked_properties state.history s)))
      classes
  in
  (* layer 1: dominance filtering of the candidate property sets; the
     naive/sequential counters keep describing the unpruned space so the
     pruning is visible as rounds_pruned *)
  let with_props =
    if state.config.Config.use_dominance_pruning then
      List.map
        (List.map (fun s ->
             let kept, dropped = History.candidates state.history s in
             if dropped <> [] && not (List.mem_assoc s state.pruned_props)
             then state.pruned_props <- (s, dropped) :: state.pruned_props;
             (s, kept)))
        classes
    else ranked
  in
  state.rounds_naive <- state.rounds_naive + Rounds.naive_total ranked;
  state.rounds_sequential <-
    state.rounds_sequential + Rounds.sequential_total ranked;
  state.rounds_pruned <-
    state.rounds_pruned
    + (Rounds.sequential_total ranked - Rounds.sequential_total with_props);
  let gen = Rounds.create with_props in
  let candidates = ref [] in
  let use_bound = state.config.Config.use_round_bound in
  (* layer 2 incumbent: the cheapest walking cost seen at this LCA so far.
     Bounds carry a hair of relative slack so a round in true near-tie
     territory is never aborted — ties must keep resolving exactly as in
     the exhaustive run. *)
  let incumbent = ref infinity in
  let slack b = if b = infinity then infinity else b *. (1.0 +. 1e-6) in
  let round_bound () =
    if not use_bound then infinity
    else if Rounds.last_class gen then slack !incumbent
    else
      (* earlier classes still steer (their best combo is frozen): bound
         only against the class's own best so the frozen choice matches
         the exhaustive run *)
      match Rounds.class_best_cost gen with
      | Some c -> slack c
      | None -> infinity
  in
  (* the plan without any enforcement (the phase-1 shape) also competes *)
  (match log_phys_opt g extreq with
  | Some p ->
      candidates := [ p ];
      if use_bound then incumbent := Scost.Dagcost.cost t.Optimizer.cluster p
  | None -> ());
  let traced = Sobs.Trace.enabled () in
  let continue_ = ref true in
  while !continue_ do
    if Budget.exhausted t.Optimizer.budget then continue_ := false
    else
      match Rounds.next gen with
      | None -> continue_ := false
      | Some assignment ->
          let bound = round_bound () in
          let ext' =
            Extreq.normalize
              { extreq with Extreq.enforce = extreq.Extreq.enforce @ assignment }
          in
          if traced then
            Sobs.Trace.begin_span ~pid:Sobs.Trace.pid_phase2
              ~args:
                [
                  ("lca", Sobs.Trace.Int g.Smemo.Memo.id);
                  ("round", Sobs.Trace.Int (Rounds.generated gen));
                  ("assignment", Sobs.Trace.Str (pp_assignment assignment));
                ]
              "ReoptimizeRound";
          let rt0 = if traced then Unix.gettimeofday () else 0.0 in
          let finish cost =
            if traced then begin
              Sobs.Hist.observe round_seconds (Unix.gettimeofday () -. rt0);
              Sobs.Trace.end_span ~pid:Sobs.Trace.pid_phase2
                ~args:[ ("cost", Sobs.Trace.Float cost) ]
                "ReoptimizeRound"
            end
          in
          let result = log_phys_opt ~bound g ext' in
          if t.Optimizer.tainted then begin
            (* layer 2 abort: the round's true cost provably exceeds the
               incumbent (or class best) by more than the slack, so its
               plan can never be chosen; report infinity so the class
               best is as unmoved as it would be by the true cost *)
            Budget.note_round_aborted t.Optimizer.budget;
            state.rounds_aborted_bound <- state.rounds_aborted_bound + 1;
            Log.debug (fun m ->
                m "round %d at LCA %d: {%s} aborted (bound %.6g)"
                  (Rounds.generated gen) g.Smemo.Memo.id
                  (pp_assignment assignment) bound);
            Rounds.report gen ~cost:infinity;
            finish infinity
          end
          else begin
            Budget.note_round_executed t.Optimizer.budget;
            state.rounds_executed <- state.rounds_executed + 1;
            match result with
            | Some p ->
                (* feedback steering the sequential enumeration: use the
                   walking cost so the last-ulp noise of the cached
                   closure cannot flip which assignment a class keeps as
                   its best *)
                let cost = Scost.Dagcost.cost t.Optimizer.cluster p in
                Log.debug (fun m ->
                    m "round %d at LCA %d: {%s} -> cost %.6g"
                      (Rounds.generated gen) g.Smemo.Memo.id
                      (pp_assignment assignment) cost);
                Rounds.report gen ~cost;
                candidates := p :: !candidates;
                if use_bound && cost < !incumbent then incumbent := cost;
                finish cost
            | None ->
                Log.debug (fun m ->
                    m "round %d at LCA %d: infeasible assignment"
                      (Rounds.generated gen) g.Smemo.Memo.id);
                Rounds.report gen ~cost:infinity;
                finish infinity
          end
  done;
  let winner = Optimizer.cheapest t !candidates in
  (if Sobs.Trace.enabled () then
     let args =
       match winner with
       | Some p ->
           [
             ("lca", Sobs.Trace.Int g.Smemo.Memo.id);
             ("cost", Sobs.Trace.Float (Scost.Dagcost.cost t.Optimizer.cluster p));
           ]
       | None -> [ ("lca", Sobs.Trace.Int g.Smemo.Memo.id) ]
     in
     Sobs.Trace.instant ~pid:Sobs.Trace.pid_phase2 ~args "round.winner");
  winner

let intercept state (t : Optimizer.t) (g : Smemo.Memo.group)
    (extreq : Extreq.t) ~self ~log_phys_opt =
  if t.Optimizer.phase <> 2 then None
  else
    match
      (g.Smemo.Memo.shared, Extreq.enforcement extreq g.Smemo.Memo.id)
    with
    | true, Some pinned ->
        (* pinned shared group: one base plan under the enforced
           properties, shared by every consumer; per-consumer enforcers on
           top when the original requirement asks for more *)
        if Sobs.Trace.enabled () then
          Sobs.Trace.instant ~pid:Sobs.Trace.pid_phase2
            ~args:
              [
                ("group", Sobs.Trace.Int g.Smemo.Memo.id);
                ("props", Sobs.Trace.Str (Fmt.str "%a" Reqprops.pp pinned));
              ]
            "pinned.shared";
        let keep =
          (* layer 3, cross-round winner reuse: beyond the group's own
             entry, drop enforcement entries for shared groups that are
             not below this one — they are unreachable from here (every
             descendant prunes to its own shared_below anyway), so they
             cannot influence the plan, yet they differ between adjacent
             mixed-radix rounds and would fragment the winner cache into
             one cold entry per round *)
          let si = shared_info state in
          if
            state.config.Config.use_slice_reuse
            && Hashtbl.mem si.Shared_info.info g.Smemo.Memo.id
          then begin
            let below = Shared_info.shared_below si g.Smemo.Memo.id in
            fun (gid, _) -> gid <> g.Smemo.Memo.id && List.mem gid below
          end
          else fun (gid, _) -> gid <> g.Smemo.Memo.id
        in
        let inner =
          Extreq.normalize
            {
              Extreq.req = pinned;
              enforce = List.filter keep extreq.Extreq.enforce;
            }
        in
        Some
          (match self g inner with
          | None -> None
          | Some base -> compensate t g extreq.Extreq.req base)
    | _ ->
        let si = shared_info state in
        let lcas = Shared_info.lca_groups si g.Smemo.Memo.id in
        let to_assign =
          List.filter
            (fun s ->
              Extreq.enforcement extreq s = None
              && History.entries state.history s <> [])
            lcas
        in
        if to_assign = [] then None
        else Some (run_rounds state t g extreq to_assign ~log_phys_opt)

let make_ext state : Optimizer.ext =
  {
    Optimizer.before_optimize = before_optimize state;
    child_extreq = child_extreq state;
    intercept = intercept state;
    after_winner = after_winner state;
  }

(* --- the full two-phase optimization of a memo with spools ------------ *)

type outcome = {
  plan : Plan.t option;
  phase1_plan : Plan.t option;
  state : state;
  budget : Budget.t;
}

let optimize ?(config = Config.default) ?budget ~cluster
    (memo : Smemo.Memo.t) : outcome =
  let state = create config in
  let t = Optimizer.create ?budget ~ext:(make_ext state) ~cluster memo in
  t.Optimizer.phase <- 1;
  let p1 =
    Sobs.Trace.with_span ~pid:Sobs.Trace.pid_phase1 "phase 1" (fun () ->
        Optimizer.optimize_root t)
  in
  (* Step 3: propagate shared-group info and identify LCAs *)
  let si =
    Sobs.Trace.with_span ~pid:Sobs.Trace.pid_phase2
      "shared-info (Algorithm 3)" (fun () -> Shared_info.compute memo)
  in
  state.si <- Some si;
  Log.info (fun m ->
      m "phase 1 done (%d tasks); LCAs: %s" t.Optimizer.budget.Budget.tasks
        (String.concat ", "
           (Hashtbl.fold
              (fun s l acc -> Fmt.str "%d->%d" s l :: acc)
              si.Shared_info.lca [])));
  t.Optimizer.phase <- 2;
  let p2 =
    Sobs.Trace.with_span ~pid:Sobs.Trace.pid_phase2 "phase 2" (fun () ->
        Optimizer.optimize_root t)
  in
  state.phase2_winner_reuse_hits <- t.Optimizer.phase2_winner_hits;
  Log.info (fun m ->
      m "phase 2 done: %d rounds executed (%d pruned, %d aborted) at %d LCA \
         sites"
        state.rounds_executed state.rounds_pruned state.rounds_aborted_bound
        state.lca_sites);
  let best =
    match (p1, p2) with
    | Some a, Some b -> Some (if Optimizer.plan_le t b a then b else a)
    | Some a, None -> Some a
    | None, b -> b
  in
  { plan = best; phase1_plan = p1; state; budget = t.Optimizer.budget }
