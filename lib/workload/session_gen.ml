open Relalg

(* Session-stream generator for the serve loop: a seeded stream of
   script submissions in the [Sserve.Session] protocol, built to
   exercise every serve-mode path regardless of seed.

   The stream opens with a fixed prelude that guarantees the serve
   acceptance signals:

   - an exact duplicate and a whitespace-only variant of the first
     script (plan-cache hits through normalization),
   - an alias-renamed pair of qualified scripts in one batch (the
     second is a within-batch duplicate after normalization),
   - a shared-scan pair batched together — same EXTRACT + filter,
     different GROUP BY keys — whose combined memo merges the scan
     chain across the two scripts (a cross-script spool);

   then seeded filler: fresh variations over a small template space,
   duplicates of earlier submissions, batch breaks, and one
   [#catalog-bump] near the three-quarter mark to exercise
   invalidation.  The filler also rotates [#tenant] attribution over a
   small fixed tenant set (the prelude switches off the default tenant
   deterministically, so per-tenant traffic counters always see at
   least two tenants), and the stream closes with one [#stats] so a
   generated session exercises the live-exposition verb.

   Every OUTPUT carries ORDER BY over the full (unique) group key, so
   row order is total and outputs compare byte-identical across plan
   shapes — the property the replay tests assert. *)

let files = [| "serve_log0"; "serve_log1"; "serve_log2" |]

(* An aggregation over a filtered scan, unqualified column references.
   [keys] must be non-empty; the ORDER BY spans the whole group key so
   output order is unique. *)
let plain_script ~file ~keys ~cut ~out =
  let ks = String.concat "," keys in
  Printf.sprintf
    "R = EXTRACT A,B,C,D FROM \"%s\" USING LogExtractor;\n\
     F = SELECT A,B,C,D FROM R WHERE D > %d;\n\
     S = SELECT %s, Sum(D) AS V FROM F GROUP BY %s;\n\
     OUTPUT S TO \"%s\" ORDER BY %s;\n"
    file cut ks ks out ks

(* The same computation written with source aliases; normalization
   canonicalizes the alias name, so any two instances that differ only
   in [alias] (and relation names) share one cache entry.  Qualification
   structure is part of the normal form — this does NOT normalize to
   [plain_script]. *)
let aliased_script ~alias ~rel ~file ~keys ~cut ~out =
  let q k = alias ^ "." ^ k in
  let ks = String.concat "," (List.map q keys) in
  let oks = String.concat "," keys in
  Printf.sprintf
    "%s = EXTRACT A,B,C,D FROM \"%s\" USING LogExtractor;\n\
     S = SELECT %s, Sum(%s) AS V FROM %s AS %s WHERE %s > %d GROUP BY %s;\n\
     OUTPUT S TO \"%s\" ORDER BY %s;\n"
    rel file ks (q "D") rel alias (q "D") cut ks out oks

(* Indent and pad a script without changing its meaning. *)
let respace s =
  String.concat "\n"
    (List.map
       (fun line -> if String.trim line = "" then line else "  " ^ line ^ "  ")
       (String.split_on_char '\n' s))

let key_choices = [| [ "A" ]; [ "B" ]; [ "A"; "B" ]; [ "B"; "C" ]; [ "A"; "C" ] |]

(* A small closed tenant set: label values must never be unbounded
   (see Sobs.Metrics), so the generator draws from these three. *)
let tenants = [| "blue"; "green"; "ruby" |]

let generate ?(seed = 1) ?(scripts = 20) () : string =
  let rng = Sutil.Rng.create seed in
  let buf = Buffer.create 4096 in
  let n = ref 0 in
  let history = ref [] in
  let script text =
    incr n;
    history := text :: !history;
    Buffer.add_string buf (Printf.sprintf "#script s%d\n%s\n#end\n" !n text)
  in
  let batch () = Buffer.add_string buf "#batch\n" in
  Buffer.add_string buf
    (Printf.sprintf "## serve session stream (seed=%d, scripts=%d)\n" seed
       scripts);
  (* prelude: duplicate + whitespace variant -> cache hits *)
  let s1 = plain_script ~file:files.(0) ~keys:[ "A" ] ~cut:5 ~out:"serve_dup" in
  script s1;
  script s1;
  script (respace s1);
  batch ();
  (* alias-renamed pair in one batch -> within-batch duplicate *)
  script
    (aliased_script ~alias:"u" ~rel:"Raw" ~file:files.(1) ~keys:[ "B" ] ~cut:3
       ~out:"serve_alias");
  script
    (aliased_script ~alias:"w" ~rel:"Zt" ~file:files.(1) ~keys:[ "B" ] ~cut:3
       ~out:"serve_alias");
  batch ();
  (* shared-scan pair: same extract + filter, different group keys ->
     two distinct misses whose combined memo shares the scan chain *)
  script (plain_script ~file:files.(2) ~keys:[ "A" ] ~cut:7 ~out:"serve_xa");
  script (plain_script ~file:files.(2) ~keys:[ "B" ] ~cut:7 ~out:"serve_xb");
  batch ();
  (* the prelude runs as the default tenant; everything after is
     attributed, so per-tenant counters always cover >= two tenants *)
  Buffer.add_string buf (Printf.sprintf "#tenant %s\n" tenants.(0));
  (* seeded filler *)
  let bumped = ref false in
  let in_batch = ref 0 in
  while !n < scripts do
    (if (not !bumped) && !n * 4 >= scripts * 3 then begin
       bumped := true;
       if !in_batch > 0 then batch ();
       in_batch := 0;
       Buffer.add_string buf "#catalog-bump\n"
     end);
    (match Sutil.Rng.int rng 10 with
    | 0 | 1 | 2 when !history <> [] ->
        (* resubmit an earlier script verbatim *)
        script (Sutil.Rng.pick_list rng !history)
    | 3 ->
        (* a shared-scan partner pair inside one batch *)
        let file = files.(Sutil.Rng.int rng (Array.length files)) in
        let cut = Sutil.Rng.int rng 9 in
        script (plain_script ~file ~keys:[ "A" ] ~cut ~out:"serve_pa");
        script (plain_script ~file ~keys:[ "B"; "C" ] ~cut ~out:"serve_pb");
        in_batch := !in_batch + 1
    | 4 ->
        (* rotate tenant attribution mid-stream *)
        Buffer.add_string buf
          (Printf.sprintf "#tenant %s\n"
             tenants.(Sutil.Rng.int rng (Array.length tenants)));
        script
          (plain_script
             ~file:(files.(Sutil.Rng.int rng (Array.length files)))
             ~keys:key_choices.(Sutil.Rng.int rng (Array.length key_choices))
             ~cut:(Sutil.Rng.int rng 9)
             ~out:"serve_fill")
    | 5 ->
        script
          (aliased_script ~alias:"q" ~rel:"In"
             ~file:(files.(Sutil.Rng.int rng (Array.length files)))
             ~keys:key_choices.(Sutil.Rng.int rng (Array.length key_choices))
             ~cut:(Sutil.Rng.int rng 9)
             ~out:"serve_fill")
    | _ ->
        script
          (plain_script
             ~file:(files.(Sutil.Rng.int rng (Array.length files)))
             ~keys:key_choices.(Sutil.Rng.int rng (Array.length key_choices))
             ~cut:(Sutil.Rng.int rng 9)
             ~out:"serve_fill"));
    incr in_batch;
    if !in_batch >= 2 + Sutil.Rng.int rng 3 then begin
      batch ();
      in_batch := 0
    end
  done;
  if !in_batch > 0 then batch ();
  Buffer.add_string buf "#stats\n";
  Buffer.add_string buf "#quit\n";
  Buffer.contents buf

let register catalog =
  Array.iteri
    (fun i path ->
      Catalog.register catalog
        (Catalog.mk_file ~path
           ~rows:(8_000_000 * (i + 1))
           ~row_bytes:100
           [
             ("A", Schema.Tint, 60);
             ("B", Schema.Tint, 500);
             ("C", Schema.Tint, 60);
             ("D", Schema.Tint, 1_000_000);
           ]))
    files

let catalog () =
  let c = Catalog.create () in
  register c;
  c
