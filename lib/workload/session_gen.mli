(** Seeded session-stream generator for the serve loop.

    Emits a [Sserve.Session]-protocol stream whose fixed prelude
    guarantees, at any seed: at least two plan-cache hits (an exact
    duplicate, a whitespace-only variant, and an alias-renamed
    within-batch duplicate) and at least one batched shared-scan pair
    whose combined memo shares the scan chain across two scripts.
    Seeded filler adds fresh variations, resubmissions, batch breaks
    and one [#catalog-bump] near the three-quarter mark.

    Every OUTPUT orders by its full (unique) group key, so outputs are
    byte-identical however the plan was obtained — the replay
    determinism the serve tests assert. *)

(** [generate ~seed ~scripts ()] returns the protocol text with
    [scripts] submissions (minimum 7: the prelude). *)
val generate : ?seed:int -> ?scripts:int -> unit -> string

(** Register catalog statistics for the [serve_log*] input files. *)
val register : Relalg.Catalog.t -> unit

(** Fresh catalog with the [serve_log*] statistics registered. *)
val catalog : unit -> Relalg.Catalog.t
