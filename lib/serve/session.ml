(* Line-oriented submission protocol for the serve loop.

   Directives start with [#] in column zero:

     #script <id>      begin a script; following lines are script text
     #end              end the current script
     #batch            flush pending scripts as one batch
     #tenant <name>    attribute following scripts to this tenant
     #catalog-bump     advance the statistics epoch (invalidates cache)
     #stats            emit a live metrics snapshot
     #dump             dump the flight recorder
     #quit             stop reading
     ## ...            comment, ignored

   Blank lines between scripts are ignored; script bodies keep theirs
   (the parser does not care).  EOF outside a script implies a final
   flush (the caller's job); EOF inside one is a protocol error, as is
   any stray text or unknown directive — a malformed stream should fail
   loudly, not silently drop a submission. *)

type item =
  | Script of { id : string; text : string }
  | Flush
  | Tenant of string
  | Catalog_bump
  | Stats
  | Dump
  | Quit

exception Protocol_error of string

let err fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let is_blank s = String.trim s = ""

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* One item from a pull-based line source; [None] at end of stream.  A
   [#script] block is consumed whole. *)
let next_item (next : unit -> string option) : item option =
  let rec directive () =
    match next () with
    | None -> None
    | Some line ->
        if is_blank line || starts_with ~prefix:"##" line then directive ()
        else if starts_with ~prefix:"#script" line then (
          let id = String.trim (String.sub line 7 (String.length line - 7)) in
          if id = "" then err "#script requires an id";
          let buf = Buffer.create 256 in
          let rec body () =
            match next () with
            | None -> err "end of stream inside #script %s (missing #end)" id
            | Some l when String.trim l = "#end" ->
                Some (Script { id; text = Buffer.contents buf })
            | Some l
              when starts_with ~prefix:"#" l
                   && not (starts_with ~prefix:"##" l) ->
                err "directive %S inside #script %s (missing #end)" l id
            | Some l ->
                Buffer.add_string buf l;
                Buffer.add_char buf '\n';
                body ()
          in
          body ())
        else if starts_with ~prefix:"#tenant" line then (
          let name =
            String.trim (String.sub line 7 (String.length line - 7))
          in
          if name = "" then err "#tenant requires a name";
          Some (Tenant name))
        else
          let d = String.trim line in
          if d = "#batch" then Some Flush
          else if d = "#catalog-bump" then Some Catalog_bump
          else if d = "#stats" then Some Stats
          else if d = "#dump" then Some Dump
          else if d = "#quit" then Some Quit
          else if starts_with ~prefix:"#" line then
            err "unknown directive %S" line
          else err "stray text outside a #script block: %S" line
  in
  directive ()

let read ic = next_item (fun () -> In_channel.input_line ic)

let items_of_string s =
  let lines = ref (String.split_on_char '\n' s) in
  let next () =
    match !lines with
    | [] -> None
    | l :: rest ->
        lines := rest;
        Some l
  in
  let rec all acc =
    match next_item next with
    | None -> List.rev acc
    | Some it -> all (it :: acc)
  in
  all []
