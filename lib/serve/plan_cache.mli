(** Fingerprint-keyed plan cache for the serve loop.

    Keys are {!Cse.Fingerprint.hash_string} over the normalized script
    text with the catalog version folded in, so bumping the statistics
    epoch makes every prior key unreachable — invalidation is free and
    {!purge_stale} only reclaims memory.  Hits, misses and purges bump
    the [serve.cache_hits] / [serve.cache_misses] /
    [serve.cache_invalidations] counters. *)

type entry = {
  fingerprint : int;
  normalized : string;  (** canonical text behind the key *)
  outputs : int;  (** OUTPUT statements in the script *)
  catalog_version : int;  (** statistics epoch the plan was built under *)
  report : Cse.Pipeline.report;
      (** the original optimization, plans included — a hit re-executes
          [report.cse_plan] and skips parse/bind/optimize *)
  mutable hits : int;
}

type t

val create : unit -> t

(** The cache key for a normalized script under a catalog version. *)
val key : catalog_version:int -> string -> int

(** Lookup; a [None] counts as a miss.  A [Some] does {e not} count as a
    hit yet — call {!note_hit} when the entry is actually reused, so
    within-batch duplicates can be credited without a second lookup. *)
val find : t -> int -> entry option

(** Credit a reuse of [entry] (bumps the entry and the global hit
    counter). *)
val note_hit : entry -> unit

val add : t -> entry -> unit
val size : t -> int

(** Drop entries optimized under a different statistics epoch; returns
    the number removed (also counted as invalidations). *)
val purge_stale : t -> current_version:int -> int
