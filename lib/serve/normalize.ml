(* Script normalization for the serve-mode plan cache.

   Two submissions that differ only in whitespace, comments, assigned
   relation names or source aliases must hit the same cache entry and
   reuse the same plan.  Parsing already erases lexical noise; this pass
   erases the author's choice of names:

   - assigned relation names are alpha-renamed to [_r0.._rN] in
     first-assignment order (shadowing re-assigns the original name to a
     fresh canonical one, matching the binder's last-assignment-wins
     scoping);
   - every SELECT source gets a positional canonical alias [_q0..] over
     [FROM] then [JOIN] order, and all qualified column references are
     rewritten through it.  This matters beyond cache keying: the binder
     leaks source aliases into the physical column names of multi-source
     selects ([alias.col] rename projections), so canonical aliases make
     alias-renamed variants produce structurally identical DAGs — the
     combined-memo fingerprint pass can then merge them across scripts;
   - EXTRACT and OUTPUT paths are reduced with [Binder.normalize_path],
     the same basename reduction the binder applies at bind time.

   Output-visible names are deliberately untouched: select-item aliases
   determine output schemas and ORDER BY resolves against them, so both
   stay as written.  Unaliased qualified items are safe to requalify —
   the binder names them by the bare column ([default_alias]). *)

open Slang.Ast

let canon_rel i = Printf.sprintf "_r%d" i
let canon_src i = Printf.sprintf "_q%d" i

let rename map name =
  match Hashtbl.find_opt map name with Some n -> n | None -> name

(* Rewrite the qualifiers of every column reference through [qmap]
   (effective source name -> canonical alias).  Unqualified references
   resolve positionally in the binder and need no rewrite. *)
let rec requalify qmap (e : expr) : expr =
  match e with
  | Col_ref (Some q, c) -> Col_ref (Some (rename qmap q), c)
  | Col_ref (None, _) | Int_lit _ | Float_lit _ | Str_lit _ | Star -> e
  | Call (f, args) -> Call (f, List.map (requalify qmap) args)
  | Binop (op, a, b) -> Binop (op, requalify qmap a, requalify qmap b)
  | Cmp (op, a, b) -> Cmp (op, requalify qmap a, requalify qmap b)
  | And (a, b) -> And (requalify qmap a, requalify qmap b)
  | Or (a, b) -> Or (requalify qmap a, requalify qmap b)
  | Not a -> Not (requalify qmap a)

let normalize_query rel_map (q : query) : query =
  match q with
  | Extract { cols; file; extractor } ->
      Extract { cols; file = Slogical.Binder.normalize_path file; extractor }
  | Union_all (a, b) -> Union_all (rename rel_map a, rename rel_map b)
  | Select { distinct; items; from; joins; where; group_by; having } ->
      let sources = from @ List.map (fun (s, _, _) -> s) joins in
      (* Effective name (alias if given, else the relation name, i.e. the
         binder's resolution rule) -> positional canonical alias. *)
      let qmap = Hashtbl.create 8 in
      List.iteri
        (fun i { rel; src_alias } ->
          Hashtbl.replace qmap (Option.value src_alias ~default:rel)
            (canon_src i))
        sources;
      let re_source i { rel; src_alias = _ } =
        { rel = rename rel_map rel; src_alias = Some (canon_src i) }
      in
      let n_from = List.length from in
      let rq = requalify qmap in
      Select
        {
          distinct;
          items = List.map (fun it -> { it with item = rq it.item }) items;
          from = List.mapi re_source from;
          joins =
            List.mapi
              (fun j (s, on, outer) -> (re_source (n_from + j) s, rq on, outer))
              joins;
          where = Option.map rq where;
          group_by = List.map rq group_by;
          having = Option.map rq having;
        }

let script (s : script) : script =
  let rel_map = Hashtbl.create 8 in
  let next = ref 0 in
  List.map
    (fun st ->
      match st with
      | Assign (name, q) ->
          (* normalize the rhs first: its sources refer to relations
             assigned *before* this statement *)
          let q' = normalize_query rel_map q in
          let canon = canon_rel !next in
          incr next;
          Hashtbl.replace rel_map name canon;
          Assign (canon, q')
      | Output { rel; file; order } ->
          Output
            {
              rel = rename rel_map rel;
              file = Slogical.Binder.normalize_path file;
              order;
            })
    s

let parse text = script (Slang.Parser.parse_script text)

let to_text = Slang.Ast.to_string

let outputs_of s =
  List.length
    (List.filter (function Slang.Ast.Output _ -> true | _ -> false) s)

(* Structural renaming of every relation name and output file in an
   already-normalized script.  Safe only after [script]: qualifiers are
   all [_q] aliases by then, so relation names appear exactly at binding
   sites (assignment lhs, source rel, UNION ALL arguments, OUTPUT rel)
   and never inside expressions. *)
let map_names ~rel:f ~output_file:g (s : script) : script =
  List.map
    (fun st ->
      match st with
      | Assign (name, q) ->
          let q' =
            match q with
            | Extract _ -> q
            | Union_all (a, b) -> Union_all (f a, f b)
            | Select sel ->
                Select
                  {
                    sel with
                    from =
                      List.map
                        (fun src -> { src with rel = f src.rel })
                        sel.from;
                    joins =
                      List.map
                        (fun (src, on, outer) ->
                          ({ src with rel = f src.rel }, on, outer))
                        sel.joins;
                  }
          in
          Assign (f name, q')
      | Output { rel; file; order } ->
          Output { rel = f rel; file = g file; order })
    s

let session_prefix i = Printf.sprintf "_s%d" i

let tag_output i file = Printf.sprintf "%s:%s" (session_prefix i) file

let untag_output file =
  match String.index_opt file ':' with
  | Some i when i > 0 && file.[0] = '_' && file.[1] = 's' ->
      String.sub file (i + 1) (String.length file - i - 1)
  | _ -> file

(* One script per session, already normalized; relation names are
   prefixed per session so the scripts bind side by side in one DAG, and
   output files are tagged so no two sessions' OUTPUT statements can be
   structurally identical (identical outputs would merge into one memo
   group and break positional output splitting).  Shared *inputs* still
   merge: the fingerprint pass compares operator parameters, and the
   session prefix never reaches expressions or physical column names. *)
let combine (scripts : script list) : script =
  List.concat
    (List.mapi
       (fun i s ->
         map_names
           ~rel:(fun n -> session_prefix i ^ n)
           ~output_file:(tag_output i) s)
       scripts)
