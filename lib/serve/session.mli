(** Line-oriented submission protocol for the serve loop.

    {v
#script <id>      begin a script; following lines are its text
#end              end the current script
#batch            flush pending scripts as one batch
#tenant <name>    attribute following scripts to this tenant
#catalog-bump     advance the statistics epoch (invalidates the cache)
#stats            emit a live metrics snapshot
#dump             dump the flight recorder
#quit             stop reading
## ...            comment, ignored
    v}

    Blank lines between scripts are ignored.  Stray text, unknown
    directives, and end-of-stream inside a script raise
    {!Protocol_error}; end-of-stream between scripts is a normal end
    (callers flush whatever is pending). *)

type item =
  | Script of { id : string; text : string }
  | Flush
  | Tenant of string  (** applies to all following scripts *)
  | Catalog_bump
  | Stats
  | Dump
  | Quit

exception Protocol_error of string

(** Next item from a channel; [None] at end of stream.  A [#script]
    block is consumed whole. *)
val read : in_channel -> item option

(** Parse a whole stream held in a string (generators, tests). *)
val items_of_string : string -> item list
