(* Fingerprint-keyed plan cache for the serve loop.

   The key folds the catalog version into the hash of the normalized
   script text, so a statistics epoch change makes every prior key
   unreachable — stale entries cannot hit by construction; [purge_stale]
   merely reclaims their memory.  A hit hands back the full pipeline
   report of the original optimization: the caller re-executes the
   cached physical plan and skips parse/bind/optimize entirely. *)

let c_hits = Sutil.Counters.counter "serve.cache_hits"
let c_misses = Sutil.Counters.counter "serve.cache_misses"
let c_invalidations = Sutil.Counters.counter "serve.cache_invalidations"

type entry = {
  fingerprint : int;
  normalized : string;  (* canonical text, for diagnostics / collisions *)
  outputs : int;  (* OUTPUT statements in the script *)
  catalog_version : int;  (* epoch the plan was optimized under *)
  report : Cse.Pipeline.report;
  mutable hits : int;
}

type t = { table : (int, entry) Hashtbl.t }

let create () = { table = Hashtbl.create 64 }

let key ~catalog_version normalized =
  Cse.Fingerprint.hash_string
    (normalized ^ "\x00catalog-v" ^ string_of_int catalog_version)

let note_hit e =
  e.hits <- e.hits + 1;
  Sutil.Counters.bump c_hits 1

(* [find] reports the miss; the caller reports the hit via [note_hit]
   once it decides the entry is actually being reused (within-batch
   duplicates of a fresh miss count as hits too, and they never call
   [find] twice). *)
let find t fp =
  match Hashtbl.find_opt t.table fp with
  | Some e -> Some e
  | None ->
      Sutil.Counters.bump c_misses 1;
      None

let add t (e : entry) = Hashtbl.replace t.table e.fingerprint e

let size t = Hashtbl.length t.table

let purge_stale t ~current_version =
  let stale =
    Hashtbl.fold
      (fun fp e acc ->
        if e.catalog_version <> current_version then fp :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) stale;
  let n = List.length stale in
  Sutil.Counters.bump c_invalidations n;
  n
