(* The long-running serve engine: accepts a stream of script
   submissions, consults the plan cache, batches concurrently-submitted
   fresh scripts into one combined memo so phase 2 detects common
   subexpressions *across* scripts, and executes everything on one
   persistent executor.

   Per flushed batch:

   1. parse + normalize each pending script; a parse failure fails that
      session only;
   2. classify against the cache.  A hit reuses the cached pipeline
      report — parse happened but bind/optimize are skipped.  The first
      occurrence of a fresh fingerprint is a miss and is solo-optimized
      to populate the cache (so later submissions anywhere in the stream
      reuse it); further occurrences in the same batch count as hits;
   3. execute.  Hits and duplicates run their cached [cse_plan]
      individually.  When the batch holds two or more distinct misses,
      their normalized scripts are combined into one script
      ([Normalize.combine]) and optimized as one memo: structurally
      identical subexpressions fingerprint-merge across scripts, so a
      shared scan spools once in a single executor pass.  The combined
      run's outputs are split positionally back to sessions.  Combined
      plans are never cached — only solo optimizations populate the
      cache, so a cache entry always means "this script alone".

   Failures are contained per session or per batch: a combined run that
   misbehaves (optimizer failure, output-count mismatch) falls back to
   executing each miss's cached solo plan. *)

let c_sessions = Sutil.Counters.counter "serve.sessions"
let c_batches = Sutil.Counters.counter "serve.batches"
let c_combined = Sutil.Counters.counter "serve.combined_runs"
let c_cross = Sutil.Counters.counter "serve.cross_script_shares"

(* Every engine also keeps a structured, per-engine [Sobs.Metrics]
   registry (the process-global serve.* counters above are kept
   unchanged for existing reports): per-path end-to-end session latency
   histograms, cache occupancy gauges and per-tenant traffic counters.
   Per-engine, so tests and embedded engines never see each other's
   readings — the reason the lifetime counters above cannot serve.

   Invariants the SA046 audit holds a snapshot to:
   every session lands in [serve.sessions_submitted]; failures land in
   [serve.sessions_failed]; every non-failed session is exactly one of
   [serve.cache_hits]/[serve.cache_misses] and observes exactly one
   latency histogram path (hit / share / miss); the [serve.cache_size]
   gauge equals the plan cache's entry count. *)

let path_label = function
  | `Hit -> "hit"  (* plan cache hit (or within-batch duplicate) *)
  | `Share -> "share"  (* executed via the combined cross-script run *)
  | `Miss -> "miss"  (* solo-optimized and solo-executed *)

type status = Done of { cache_hit : bool; combined : bool } | Failed of string

type session_result = {
  id : string;
  fingerprint : int option;  (* [None] when parsing failed *)
  status : status;
  conventional_cost : float;  (* solo costs from the cache entry *)
  cse_cost : float;
  outputs : (string * Relalg.Table.t) list;  (* statement order *)
  rows : int;  (* total rows across outputs *)
}

type batch_result = {
  seq : int;  (* 1-based batch number *)
  results : session_result list;  (* submission order *)
  combined : bool;
  combined_cost : float option;  (* DAG cost of the combined plan *)
  solo_cost_sum : float option;  (* sum of the combined members' solo costs *)
  cross_script_shares : int;  (* spools read by >= 2 sessions *)
  counters : (string * int) list;  (* counter deltas over this flush *)
  wall_s : float;  (* executor wall seconds, summed over runs *)
  attempts : int array list;  (* per-run stage attempts, for trace audit *)
  reports : Cse.Pipeline.report list;
      (* distinct optimizations behind this batch (one per distinct
         fingerprint, plus the combined run) — audit targets *)
}

type t = {
  catalog : Relalg.Catalog.t;
  cluster : Scost.Cluster.t;
  config : Cse.Config.t;
  max_tasks : int option;
  max_seconds : float option;
  cache : Plan_cache.t;
  exec : Sexec.Engine.t;
  metrics : Sobs.Metrics.t;
  mutable pending : (string * string * string) list;
      (* (id, tenant, text), reversed *)
  mutable batches : int;
}

let create ?(config = Cse.Config.default) ?max_tasks ?max_seconds
    ?(cluster = Scost.Cluster.default) ?(workers = 1) ?batch_size ?faults
    (catalog : Relalg.Catalog.t) =
  {
    catalog;
    cluster;
    config;
    max_tasks;
    max_seconds;
    cache = Plan_cache.create ();
    exec =
      Sexec.Engine.create ~workers ?batch_size ?faults
        ~machines:cluster.Scost.Cluster.machines catalog;
    pending = [];
    batches = 0;
    metrics = Sobs.Metrics.create ();
  }

let cache t = t.cache

let metrics t = t.metrics

let default_tenant = "default"

let submit ?(tenant = default_tenant) t ~id ~text =
  t.pending <- (id, tenant, text) :: t.pending

let pending_count t = List.length t.pending

let catalog_bump t =
  Relalg.Catalog.bump_version t.catalog;
  Plan_cache.purge_stale t.cache
    ~current_version:(Relalg.Catalog.version t.catalog)

(* A fresh budget per optimization: budgets are mutable task/time
   accumulators, so sharing one across pipeline runs would starve later
   scripts. *)
let budget t =
  match (t.max_tasks, t.max_seconds) with
  | None, None -> None
  | _ ->
      Some
        (Sopt.Budget.create ?max_tasks:t.max_tasks ?max_seconds:t.max_seconds
           ())

let describe = function
  | Failure m -> m
  | Cse.Pipeline.No_plan m -> m
  | Slang.Parser.Error (m, _) -> m
  | Slogical.Binder.Error m -> m
  | e -> Printexc.to_string e

(* Record the executor's figures for the run that just finished into the
   report, and account wall time / stage attempts to the batch. *)
let note_run t wall attempts (report : Cse.Pipeline.report) =
  report.Cse.Pipeline.exec <-
    Some
      {
        Cse.Pipeline.workers = t.exec.Sexec.Engine.workers;
        batch_size = t.exec.Sexec.Engine.batch_size;
        batches = t.exec.Sexec.Engine.counters.Sexec.Engine.batches;
        wall_s = t.exec.Sexec.Engine.last_wall;
        busy_s = t.exec.Sexec.Engine.last_busy;
      };
  wall := !wall +. t.exec.Sexec.Engine.last_wall;
  attempts := t.exec.Sexec.Engine.last_attempts :: !attempts

(* Distinct spool nodes (physical identity) reachable from [roots]. *)
let spool_set roots =
  let visited = ref [] in
  let spools = ref [] in
  let rec go (n : Sphys.Plan.t) =
    if not (List.memq n !visited) then (
      visited := n :: !visited;
      (match n.Sphys.Plan.op with
      | Sphys.Physop.P_spool -> spools := n :: !spools
      | _ -> ());
      List.iter go n.Sphys.Plan.children)
  in
  List.iter go roots;
  !spools

(* Split [xs] into consecutive slices of the given lengths; [None] when
   the total does not add up. *)
let split_by counts xs =
  let rec take n xs acc =
    if n = 0 then Some (List.rev acc, xs)
    else match xs with [] -> None | x :: rest -> take (n - 1) rest (x :: acc)
  in
  let rec go counts xs acc =
    match counts with
    | [] -> if xs = [] then Some (List.rev acc) else None
    | c :: rest -> (
        match take c xs [] with
        | None -> None
        | Some (slice, xs') -> go rest xs' (slice :: acc))
  in
  go counts xs []

(* Spools referenced by at least two of the per-session plan slices: the
   cross-script sharing the combined memo bought us. *)
let cross_script_spools (plan : Sphys.Plan.t) output_counts =
  let children =
    match plan.Sphys.Plan.op with
    | Sphys.Physop.P_sequence -> plan.Sphys.Plan.children
    | _ -> [ plan ]
  in
  match split_by output_counts children with
  | None -> 0
  | Some slices ->
      let sets = List.map spool_set slices in
      let distinct =
        List.fold_left
          (fun acc s -> if List.memq s acc then acc else s :: acc)
          [] (List.concat sets)
      in
      List.length
        (List.filter
           (fun s ->
             List.length (List.filter (fun set -> List.memq s set) sets) >= 2)
           distinct)

(* One successfully-parsed submission, with its cache entry. *)
type classified = {
  c_id : string;
  c_tenant : string;
  c_entry : Plan_cache.entry;
  c_norm : Slang.Ast.script;
  c_hit : bool;  (* found in cache, or a within-batch duplicate *)
  c_opt_s : float;  (* wall seconds spent classifying (parse .. optimize) *)
}

let result_of ~combined (c : classified) outputs =
  let e = c.c_entry in
  {
    id = c.c_id;
    fingerprint = Some e.Plan_cache.fingerprint;
    status = Done { cache_hit = c.c_hit; combined };
    conventional_cost = e.Plan_cache.report.Cse.Pipeline.conventional_cost;
    cse_cost = e.Plan_cache.report.Cse.Pipeline.cse_cost;
    outputs;
    rows =
      List.fold_left
        (fun acc (_, tbl) -> acc + Relalg.Table.cardinality tbl)
        0 outputs;
  }

let flush t : batch_result option =
  let pending = List.rev t.pending in
  t.pending <- [];
  if pending = [] then None
  else begin
    let before = Sutil.Counters.baseline () in
    t.batches <- t.batches + 1;
    Sutil.Counters.bump c_batches 1;
    Sutil.Counters.bump c_sessions (List.length pending);
    let version = Relalg.Catalog.version t.catalog in
    let wall = ref 0.0 and attempts = ref [] in
    (* classify in submission order; the first occurrence of a fresh
       fingerprint solo-optimizes and populates the cache *)
    let classified =
      List.map
        (fun (id, tenant, text) ->
          let ct0 = Unix.gettimeofday () in
          match
            let norm = Normalize.parse text in
            let ntext = Normalize.to_text norm in
            let fp = Plan_cache.key ~catalog_version:version ntext in
            let mk e hit =
              {
                c_id = id;
                c_tenant = tenant;
                c_entry = e;
                c_norm = norm;
                c_hit = hit;
                c_opt_s = Unix.gettimeofday () -. ct0;
              }
            in
            match Plan_cache.find t.cache fp with
            | Some e ->
                Plan_cache.note_hit e;
                mk e true
            | None ->
                let report =
                  Cse.Pipeline.run ~config:t.config ?budget:(budget t)
                    ~cluster:t.cluster ~catalog:t.catalog ntext
                in
                let e =
                  {
                    Plan_cache.fingerprint = fp;
                    normalized = ntext;
                    outputs = Normalize.outputs_of norm;
                    catalog_version = version;
                    report;
                    hits = 0;
                  }
                in
                Plan_cache.add t.cache e;
                mk e false
          with
          | c -> Ok c
          | exception e -> Error (id, tenant, describe e))
        pending
    in
    (* per-engine accounting: submissions, outcomes, per-tenant traffic.
       Bumped here (after classification, before execution) so a failed
       session is never also a hit or a miss — the SA046 invariant. *)
    List.iter
      (fun c ->
        let m = t.metrics in
        match c with
        | Ok c ->
            Sobs.Metrics.bump m "serve.sessions_submitted";
            Sobs.Metrics.bump m "serve.tenant_submitted"
              ~labels:[ ("tenant", c.c_tenant) ];
            Sobs.Metrics.bump m
              (if c.c_hit then "serve.cache_hits" else "serve.cache_misses")
        | Error (_, tenant, _) ->
            Sobs.Metrics.bump m "serve.sessions_submitted";
            Sobs.Metrics.bump m "serve.tenant_submitted"
              ~labels:[ ("tenant", tenant) ];
            Sobs.Metrics.bump m "serve.sessions_failed")
      classified;
    (* the actual misses, one per fresh fingerprint, in batch order *)
    let misses =
      List.filter_map
        (function Ok c when not c.c_hit -> Some c | _ -> None)
        classified
    in
    let combined_info =
      if List.length misses < 2 then None
      else
        (* combine the misses into one memo; fingerprints merge common
           subexpressions across the scripts, so shared scans spool once *)
        let combined_text =
          Normalize.to_text
            (Normalize.combine (List.map (fun c -> c.c_norm) misses))
        in
        match
          let report =
            Cse.Pipeline.run ~config:t.config ?budget:(budget t)
              ~cluster:t.cluster ~catalog:t.catalog combined_text
          in
          let outs = Sexec.Engine.run t.exec report.Cse.Pipeline.cse_plan in
          note_run t wall attempts report;
          let combined_wall = t.exec.Sexec.Engine.last_wall in
          let counts = List.map (fun c -> c.c_entry.Plan_cache.outputs) misses in
          match split_by counts outs with
          | None -> None (* output miscount: fall back to solo runs *)
          | Some slices ->
              let shares =
                cross_script_spools report.Cse.Pipeline.cse_plan counts
              in
              Sutil.Counters.bump c_cross shares;
              Sutil.Counters.bump c_combined 1;
              let per_session =
                List.map2
                  (fun c slice ->
                    ( c,
                      List.map
                        (fun (f, tbl) -> (Normalize.untag_output f, tbl))
                        slice ))
                  misses slices
              in
              Some (report, shares, per_session, combined_wall)
        with
        | info -> info
        | exception _ -> None
    in
    let combined_outputs =
      match combined_info with Some (_, _, per, _) -> per | None -> []
    in
    let combined_wall =
      match combined_info with Some (_, _, _, w) -> w | None -> 0.0
    in
    (* One latency observation and one served/rows/bytes accounting per
       executed session: end-to-end seconds (classification plus the
       wall of the run that produced its outputs) in the histogram of
       its execution path — exactly one of hit / share / miss. *)
    let note_served (c : classified) path exec_wall (r : session_result) =
      let m = t.metrics in
      Sobs.Metrics.observe m "serve.session_seconds"
        ~labels:[ ("path", path_label path) ]
        (c.c_opt_s +. exec_wall);
      let tenant = [ ("tenant", c.c_tenant) ] in
      Sobs.Metrics.bump m "serve.tenant_served" ~labels:tenant;
      Sobs.Metrics.bump m "serve.tenant_rows" ~labels:tenant ~by:r.rows;
      let bytes =
        List.fold_left
          (fun acc (_, tbl) ->
            acc
            + Relalg.Table.cardinality tbl
              * List.length tbl.Relalg.Table.schema
              * 8)
          0 r.outputs
      in
      Sobs.Metrics.bump m "serve.tenant_bytes" ~labels:tenant ~by:bytes;
      r
    in
    let results =
      List.map
        (function
          | Error (id, _, msg) ->
              {
                id;
                fingerprint = None;
                status = Failed msg;
                conventional_cost = 0.0;
                cse_cost = 0.0;
                outputs = [];
                rows = 0;
              }
          | Ok c -> (
              match List.assq_opt c combined_outputs with
              | Some outs ->
                  note_served c `Share combined_wall
                    (result_of ~combined:true c outs)
              | None ->
                  (* cache hits, within-batch duplicates, single miss, or
                     combined-run fallback: run the cached solo plan *)
                  let outs =
                    Sexec.Engine.run t.exec
                      c.c_entry.Plan_cache.report.Cse.Pipeline.cse_plan
                  in
                  note_run t wall attempts c.c_entry.Plan_cache.report;
                  note_served c
                    (if c.c_hit then `Hit else `Miss)
                    t.exec.Sexec.Engine.last_wall
                    (result_of ~combined:false c outs)))
        classified
    in
    (* occupancy gauges reflect the cache as of the end of this flush *)
    Sobs.Metrics.set t.metrics "serve.cache_size"
      (float_of_int (Plan_cache.size t.cache));
    let m_hits = Sobs.Metrics.get t.metrics "serve.cache_hits" in
    let m_misses = Sobs.Metrics.get t.metrics "serve.cache_misses" in
    if m_hits + m_misses > 0 then
      Sobs.Metrics.set t.metrics "serve.cache_hit_ratio"
        (float_of_int m_hits /. float_of_int (m_hits + m_misses));
    (* distinct optimizations behind this batch, for auditing: one per
       distinct fingerprint (cached plans included), plus the combined
       run *)
    let reports =
      let seen = Hashtbl.create 8 in
      List.filter_map
        (function
          | Error _ -> None
          | Ok c ->
              let fp = c.c_entry.Plan_cache.fingerprint in
              if Hashtbl.mem seen fp then None
              else (
                Hashtbl.add seen fp ();
                Some c.c_entry.Plan_cache.report))
        classified
      @ match combined_info with Some (r, _, _, _) -> [ r ] | None -> []
    in
    Some
      {
        seq = t.batches;
        results;
        combined = combined_info <> None;
        combined_cost =
          Option.map
            (fun (r, _, _, _) ->
              Scost.Dagcost.cost t.cluster r.Cse.Pipeline.cse_plan)
            combined_info;
        solo_cost_sum =
          (match combined_info with
          | None -> None
          | Some _ ->
              Some
                (List.fold_left
                   (fun acc c ->
                     acc +. c.c_entry.Plan_cache.report.Cse.Pipeline.cse_cost)
                   0.0 misses));
        cross_script_shares =
          (match combined_info with Some (_, s, _, _) -> s | None -> 0);
        counters = Sutil.Counters.deltas before;
        wall_s = !wall;
        attempts = List.rev !attempts;
        reports;
      }
  end

type totals = {
  sessions : int;
  batches : int;
  cache_hits : int;
  cache_misses : int;
  cache_invalidations : int;
  cache_size : int;
  combined_runs : int;
  cross_script_shares : int;
}

let totals t =
  {
    sessions = Sutil.Counters.get "serve.sessions";
    batches = Sutil.Counters.get "serve.batches";
    cache_hits = Sutil.Counters.get "serve.cache_hits";
    cache_misses = Sutil.Counters.get "serve.cache_misses";
    cache_invalidations = Sutil.Counters.get "serve.cache_invalidations";
    cache_size = Plan_cache.size t.cache;
    combined_runs = Sutil.Counters.get "serve.combined_runs";
    cross_script_shares = Sutil.Counters.get "serve.cross_script_shares";
  }
