(** Script normalization for the serve-mode plan cache.

    Submissions that differ only in whitespace, comments, assigned
    relation names or source aliases normalize to the same script, so
    they share one cache entry and — because the binder leaks source
    aliases into multi-source physical column names — produce
    structurally identical DAGs that the combined-memo fingerprint pass
    can merge across scripts.  Output-visible names (select-item
    aliases, ORDER BY columns) are untouched. *)

(** Normalize a parsed script: relation names alpha-renamed to
    [_r0.._rN] in first-assignment order, every SELECT source aliased
    positionally [_q0..] with qualifiers rewritten, EXTRACT/OUTPUT paths
    reduced to basenames. *)
val script : Slang.Ast.script -> Slang.Ast.script

(** Parse then {!script}.  Raises whatever the parser raises on
    malformed input. *)
val parse : string -> Slang.Ast.script

(** Re-parseable canonical text — the string the plan cache hashes. *)
val to_text : Slang.Ast.script -> string

(** Number of OUTPUT statements (the per-session slice width when
    splitting a combined run's outputs). *)
val outputs_of : Slang.Ast.script -> int

(** [combine scripts] concatenates normalized per-session scripts into
    one script that binds under a single root: relation names get a
    per-session [_s<i>] prefix, OUTPUT files a [_s<i>:] tag (so no two
    sessions' OUTPUT statements can merge into one memo group), and
    shared inputs still fingerprint-merge across sessions. *)
val combine : Slang.Ast.script list -> Slang.Ast.script

(** Strip the [_s<i>:] tag {!combine} put on an output file name;
    untagged names pass through. *)
val untag_output : string -> string
