(** The long-running serve engine: a stream of script submissions, a
    fingerprint-keyed plan cache, cross-script CSE detection over a
    combined memo, and one persistent executor.

    Submissions accumulate with {!submit} and are processed by
    {!flush}: each script is normalized and looked up in the cache
    (hits skip bind/optimize and re-execute the cached plan; misses are
    solo-optimized and cached), and when a batch carries two or more
    distinct misses their scripts are combined into one memo so
    structurally identical subexpressions spool once across scripts in
    a single executor run.  Combined plans are never cached — a cache
    entry always describes the script alone.

    [serve.*] counters ({!Sutil.Counters}) record sessions, batches,
    cache hits/misses/invalidations, combined runs and cross-script
    spool shares.  Each engine additionally owns a structured
    {!Sobs.Metrics} registry ({!metrics}): per-path session latency
    histograms ([serve.session_seconds{path=hit|share|miss}]), cache
    occupancy gauges ([serve.cache_size], [serve.cache_hit_ratio]) and
    per-tenant traffic counters ([serve.tenant_*{tenant=...}]) — the
    registry the [#stats] verb, [--stats-file] exposition and the SA046
    consistency audit read. *)

type status =
  | Done of { cache_hit : bool; combined : bool }
      (** executed; [combined] means the outputs came from the shared
          cross-script run rather than the solo plan *)
  | Failed of string  (** parse/bind/optimize failure, session-local *)

type session_result = {
  id : string;
  fingerprint : int option;  (** [None] when parsing failed *)
  status : status;
  conventional_cost : float;  (** solo estimate from the cache entry *)
  cse_cost : float;
  outputs : (string * Relalg.Table.t) list;  (** statement order *)
  rows : int;  (** total rows across outputs *)
}

type batch_result = {
  seq : int;  (** 1-based batch number *)
  results : session_result list;  (** submission order *)
  combined : bool;
  combined_cost : float option;  (** DAG cost of the combined plan *)
  solo_cost_sum : float option;
      (** what the combined members would have cost run separately *)
  cross_script_shares : int;  (** spools read by two or more sessions *)
  counters : (string * int) list;  (** counter deltas over this flush *)
  wall_s : float;  (** executor wall seconds, summed over the runs *)
  attempts : int array list;
      (** per-run stage-attempt arrays, for the trace audit *)
  reports : Cse.Pipeline.report list;
      (** distinct optimizations behind this batch — one per distinct
          fingerprint (cached plans included) plus the combined run;
          the audit targets *)
}

type t

(** [create catalog] builds an engine with an empty cache and a
    persistent executor.  [max_tasks]/[max_seconds] bound each
    optimization with a fresh budget (budgets are mutable and cannot be
    shared across runs).  [workers]/[batch_size] configure the
    executor's domain pool and columnar batch granularity.  [faults]
    injects deterministic partition losses into every executor run
    (recovery drills; exhaustion propagates out of {!flush} so the
    caller can dump the flight recorder). *)
val create :
  ?config:Cse.Config.t ->
  ?max_tasks:int ->
  ?max_seconds:float ->
  ?cluster:Scost.Cluster.t ->
  ?workers:int ->
  ?batch_size:int ->
  ?faults:Sexec.Faults.spec ->
  Relalg.Catalog.t ->
  t

val cache : t -> Plan_cache.t

(** The engine's structured metrics registry (latency histograms, cache
    gauges, per-tenant counters); per-engine, unlike the process-global
    [serve.*] counters. *)
val metrics : t -> Sobs.Metrics.t

(** Queue a script; nothing runs until {!flush}.  [tenant] (default
    ["default"]) attributes the submission in the per-tenant traffic
    counters. *)
val submit : ?tenant:string -> t -> id:string -> text:string -> unit

val pending_count : t -> int

(** Advance the catalog's statistics epoch and purge now-stale cache
    entries; returns the number purged. *)
val catalog_bump : t -> int

(** Process everything pending as one batch; [None] if nothing was
    pending. *)
val flush : t -> batch_result option

type totals = {
  sessions : int;
  batches : int;
  cache_hits : int;
  cache_misses : int;
  cache_invalidations : int;
  cache_size : int;
  combined_runs : int;
  cross_script_shares : int;
}

(** Lifetime figures, read from the [serve.*] counters and the cache. *)
val totals : t -> totals
