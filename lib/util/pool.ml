(* Fixed pool of OCaml 5 domains with nested fork-join parallel loops.

   The staged executor uses one pool at two levels: the scheduler fans a
   wave of ready stages across the pool, and a stage's own per-machine
   vertex loop fans out again from inside a stage task.  Both go through
   [parallel_for], which is safe to nest: the submitting domain always
   participates in its own group, so progress never depends on another
   worker being idle — with every worker busy, a nested loop simply runs
   inline on its submitter.

   Work claiming is a single fetch-and-add on the group's task cursor;
   the mutex/condition pair is only touched to publish groups, to park
   idle workers, and to signal group completion.  Determinism is the
   caller's contract: tasks must write disjoint slots, so the claiming
   order (which *is* schedule-dependent) never affects results.

   Per-worker busy time is accumulated wall-clock spent inside tasks,
   attributed to the domain that ran them; nested groups do not double
   count (the inner task's time is already inside the outer task's). *)

type group = {
  tasks : int -> unit;
  count : int;
  next : int Atomic.t;  (* claim cursor *)
  pending : int Atomic.t;  (* tasks not yet finished *)
  mutable failed : exn option;  (* first exception, under the pool mutex *)
}

type t = {
  size : int;  (* worker count, the submitting domain included *)
  mu : Mutex.t;
  cv : Condition.t;
  queue : group Queue.t;
  mutable live : bool;
  busy : float array;  (* per-worker seconds inside tasks; slot 0 = submitter *)
}

let size t = t.size
let busy_seconds t = Array.copy t.busy

(* Marks "this domain is already inside a pool task" so nested groups do
   not double-count busy time. *)
let in_task : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* The pool slot of the calling domain.  Workers set it once at spawn;
   any domain outside a pool (the submitter included) is slot 0.  The
   tracing layer reads this to tag events with their worker. *)
let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let current_slot () = Domain.DLS.get slot_key

let run_task t ~slot (g : group) i =
  let outer = Domain.DLS.get in_task in
  let t0 = if outer then 0.0 else Unix.gettimeofday () in
  if not outer then Domain.DLS.set in_task true;
  (try g.tasks i
   with e ->
     Mutex.lock t.mu;
     if g.failed = None then g.failed <- Some e;
     Mutex.unlock t.mu);
  if not outer then begin
    Domain.DLS.set in_task false;
    t.busy.(slot) <- t.busy.(slot) +. (Unix.gettimeofday () -. t0)
  end;
  if Atomic.fetch_and_add g.pending (-1) = 1 then begin
    (* last task of the group: wake its submitter *)
    Mutex.lock t.mu;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu
  end

(* Claim tasks from [g] until its cursor runs out. *)
let drain t ~slot (g : group) =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add g.next 1 in
    if i < g.count then run_task t ~slot g i else continue := false
  done

let worker t slot =
  Domain.DLS.set slot_key slot;
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && t.live do
      Condition.wait t.cv t.mu
    done;
    match Queue.peek_opt t.queue with
    | None ->
        (* queue empty and the pool is shutting down *)
        Mutex.unlock t.mu
    | Some g ->
        (* pop exhausted groups so later ones become visible; their
           in-flight tasks finish on whichever domain claimed them *)
        if Atomic.get g.next >= g.count then ignore (Queue.pop t.queue);
        Mutex.unlock t.mu;
        drain t ~slot g;
        loop ()
  in
  loop ()

(* Inline execution on the submitting domain still counts as busy time
   (slot 0) unless already inside a task, mirroring [run_task]. *)
let timed_inline t body =
  if Domain.DLS.get in_task then body ()
  else begin
    let t0 = Unix.gettimeofday () in
    Domain.DLS.set in_task true;
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set in_task false;
        t.busy.(0) <- t.busy.(0) +. (Unix.gettimeofday () -. t0))
      body
  end

let parallel_for t n f =
  if n <= 0 then ()
  else if t.size <= 1 || n = 1 then
    timed_inline t (fun () ->
        for i = 0 to n - 1 do
          f i
        done)
  else begin
    let g =
      {
        tasks = f;
        count = n;
        next = Atomic.make 0;
        pending = Atomic.make n;
        failed = None;
      }
    in
    Mutex.lock t.mu;
    Queue.push g t.queue;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu;
    (* participate, then wait for tasks claimed by other workers *)
    drain t ~slot:0 g;
    Mutex.lock t.mu;
    while Atomic.get g.pending > 0 do
      Condition.wait t.cv t.mu
    done;
    let failed = g.failed in
    Mutex.unlock t.mu;
    match failed with Some e -> raise e | None -> ()
  end

(* Deterministic parallel [Array.init]: slot [i] is written only by task
   [i], so the result is independent of the claiming schedule. *)
let parallel_init t n f =
  if n <= 0 then [||]
  else if t.size <= 1 || n = 1 then timed_inline t (fun () -> Array.init n f)
  else begin
    let out = Array.make n None in
    parallel_for t n (fun i -> out.(i) <- Some (f i));
    Array.map
      (function Some x -> x | None -> invalid_arg "Pool.parallel_init")
      out
  end

let with_pool ~workers fn =
  let workers = max 1 workers in
  if workers = 1 then
    fn
      {
        size = 1;
        mu = Mutex.create ();
        cv = Condition.create ();
        queue = Queue.create ();
        live = false;
        busy = [| 0.0 |];
      }
  else begin
    let t =
      {
        size = workers;
        mu = Mutex.create ();
        cv = Condition.create ();
        queue = Queue.create ();
        live = true;
        busy = Array.make workers 0.0;
      }
    in
    let domains =
      List.init (workers - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)))
    in
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock t.mu;
        t.live <- false;
        Condition.broadcast t.cv;
        Mutex.unlock t.mu;
        List.iter Domain.join domains)
      (fun () -> fn t)
  end
