(* Named monotonic counters for hot-path instrumentation.

   A counter is registered once at module initialization and bumped
   through its atomic cell, so the per-event cost is one atomic add -- no
   name lookup on the hot path.  Cells are [Atomic.t] so the staged
   executor's worker domains can bump the same counter concurrently
   without losing increments; single-domain callers pay one lock-free
   fetch-and-add, which on uncontended counters costs the same as the
   plain increment it replaced.  The registry is global and append-only
   (guarded by a mutex for concurrent first-registration); per-run
   figures come from diffing snapshots ([since]). *)

let registry : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 16
let registry_mu = Mutex.create ()

let counter name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some r -> r
      | None ->
          let r = Atomic.make 0 in
          Hashtbl.add registry name r;
          r)

let bump r n = ignore (Atomic.fetch_and_add r n)

let get name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some r -> Atomic.get r
      | None -> 0)

let snapshot () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.fold (fun name r acc -> (name, Atomic.get r) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Counters whose value differs between [before] (a [snapshot] result)
   and now, diffed by name over the union of both snapshots.  Diffing
   only the current snapshot would hide a counter that was bumped and
   then reset back to its baseline by a nested run -- taking the union
   makes [since] report every name either side has seen, and keeping
   negative deltas (possible after an intervening [reset_all]) makes
   the report honest instead of silently dropping the regression. *)
let since before =
  let now = snapshot () in
  let union =
    List.sort_uniq String.compare (List.map fst before @ List.map fst now)
  in
  List.filter_map
    (fun name ->
      let v0 = Option.value ~default:0 (List.assoc_opt name before) in
      let v = Option.value ~default:0 (List.assoc_opt name now) in
      if v <> v0 then Some (name, v - v0) else None)
    union

let reset_all () =
  Mutex.protect registry_mu (fun () ->
      Hashtbl.iter (fun _ r -> Atomic.set r 0) registry)
