(* Named monotonic counters for hot-path instrumentation.

   A counter is registered once at module initialization and bumped
   through its ref, so the per-event cost is one integer increment -- no
   name lookup on the hot path.  The registry is global and append-only;
   per-run figures come from diffing snapshots ([since]). *)

let registry : (string, int ref) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt registry name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add registry name r;
      r

let get name =
  match Hashtbl.find_opt registry name with Some r -> !r | None -> 0

let snapshot () =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* Counters that moved since [before] (a [snapshot] result), with their
   deltas; counters registered after the snapshot count from zero. *)
let since before =
  List.filter_map
    (fun (name, v) ->
      let v0 = match List.assoc_opt name before with Some v0 -> v0 | None -> 0 in
      if v > v0 then Some (name, v - v0) else None)
    (snapshot ())

let reset_all () = Hashtbl.iter (fun _ r -> r := 0) registry
