(* Named monotonic counters for hot-path instrumentation.

   A counter is registered once at module initialization and bumped
   through its atomic cell, so the per-event cost is one atomic add -- no
   name lookup on the hot path.  Cells are [Atomic.t] so the staged
   executor's worker domains can bump the same counter concurrently
   without losing increments; single-domain callers pay one lock-free
   fetch-and-add, which on uncontended counters costs the same as the
   plain increment it replaced.  The registry is global and append-only
   (guarded by a mutex for concurrent first-registration); per-run
   figures come from diffing snapshots ([since]). *)

let registry : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 16
let registry_mu = Mutex.create ()

(* Reset epoch: bumped by [reset_all] so baselines taken before a reset
   are recognized as stale and diffed against zero instead of producing
   negative deltas.  Guarded by [registry_mu]. *)
let generation = ref 0

let counter name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some r -> r
      | None ->
          let r = Atomic.make 0 in
          Hashtbl.add registry name r;
          r)

let bump r n = ignore (Atomic.fetch_and_add r n)

let get name =
  Mutex.protect registry_mu (fun () ->
      match Hashtbl.find_opt registry name with
      | Some r -> Atomic.get r
      | None -> 0)

let snapshot_unlocked () =
  Hashtbl.fold (fun name r acc -> (name, Atomic.get r) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let snapshot () = Mutex.protect registry_mu snapshot_unlocked

(* Union-diff of two value lists by name: every name either side has seen
   is reported, with nonzero deltas only.  Diffing only the current
   snapshot would hide a counter that was bumped and then reset back to
   its baseline value by a nested run. *)
let union_diff before now =
  let union =
    List.sort_uniq String.compare (List.map fst before @ List.map fst now)
  in
  List.filter_map
    (fun name ->
      let v0 = Option.value ~default:0 (List.assoc_opt name before) in
      let v = Option.value ~default:0 (List.assoc_opt name now) in
      if v <> v0 then Some (name, v - v0) else None)
    union

(* Reset-safe per-run scoping: a baseline records the reset epoch next to
   the values, so [deltas] of a baseline taken before an intervening
   [reset_all] diffs against zero (the counters restarted) instead of
   reporting negative figures — the quirk the plain [since] had. *)
type baseline = { gen : int; values : (string * int) list }

let baseline () =
  Mutex.protect registry_mu (fun () ->
      { gen = !generation; values = snapshot_unlocked () })

let deltas b =
  let gen_now, now =
    Mutex.protect registry_mu (fun () -> (!generation, snapshot_unlocked ()))
  in
  let before = if gen_now = b.gen then b.values else [] in
  union_diff before now

let since before = union_diff before (snapshot ())

let reset_all () =
  Mutex.protect registry_mu (fun () ->
      incr generation;
      Hashtbl.iter (fun _ r -> Atomic.set r 0) registry)
