(** Named monotonic counters for hot-path instrumentation.

    Register once at module initialization, bump through the atomic
    cell:

    {[
      let hits = Sutil.Counters.counter "optimizer.winner_hits"
      let f () = Sutil.Counters.bump hits 1
    ]}

    Cells are [Atomic.t], so worker domains of the parallel staged
    executor can bump the same counter concurrently without losing
    increments.  The registry is global and append-only; per-run figures
    come from diffing snapshots with {!since}. *)

(** The atomic cell behind a named counter, registering it at zero on
    first sight.  Callers keep the cell so the per-event cost is one
    lock-free fetch-and-add. *)
val counter : string -> int Atomic.t

(** [bump c n] adds [n] to the counter, atomically. *)
val bump : int Atomic.t -> int -> unit

(** Current value of a named counter; 0 if never registered. *)
val get : string -> int

(** All counters with their current values, sorted by name. *)
val snapshot : unit -> (string * int) list

(** Counters whose value changed since [before] (a {!snapshot} result),
    with their deltas, diffed by name over the {e union} of the two
    snapshots.  Counters registered after the snapshot count from zero;
    counters present in [before] but back at their old value (e.g.
    bumped and reset by a nested run) are absent — only nonzero deltas
    are reported.  A bare snapshot cannot see an intervening
    {!reset_all}, so deltas across one can go negative — sequenced runs
    in one process (the serve loop, back-to-back pipelines) should use
    {!baseline}/{!deltas} instead, which are reset-safe.  Sorted by
    name. *)
val since : (string * int) list -> (string * int) list

(** A per-run scope: the counter values {e and} the reset epoch at the
    moment it was taken. *)
type baseline

val baseline : unit -> baseline

(** Nonzero per-name deltas since the baseline, union-diffed like
    {!since}.  If {!reset_all} ran after the baseline was taken, the
    counters restarted from zero and the baseline values are treated as
    zero — deltas never go negative, so back-to-back runs in one process
    report clean figures. *)
val deltas : baseline -> (string * int) list

(** Zero every registered counter and start a new reset epoch (tests,
    repeated bench runs). *)
val reset_all : unit -> unit
