(** Named monotonic counters for hot-path instrumentation.

    Register once at module initialization, bump through the ref:

    {[
      let hits = Sutil.Counters.counter "optimizer.winner_hits"
      let f () = incr hits
    ]}

    The registry is global and append-only; per-run figures come from
    diffing snapshots with {!since}. *)

(** The ref behind a named counter, registering it at zero on first
    sight.  Callers keep the ref so the per-event cost is one integer
    increment. *)
val counter : string -> int ref

(** Current value of a named counter; 0 if never registered. *)
val get : string -> int

(** All counters with their current values, sorted by name. *)
val snapshot : unit -> (string * int) list

(** Counters that moved since [before] (a {!snapshot} result), with
    their deltas.  Counters registered after the snapshot count from
    zero. *)
val since : (string * int) list -> (string * int) list

(** Zero every registered counter (tests). *)
val reset_all : unit -> unit
