(** Named monotonic counters for hot-path instrumentation.

    Register once at module initialization, bump through the atomic
    cell:

    {[
      let hits = Sutil.Counters.counter "optimizer.winner_hits"
      let f () = Sutil.Counters.bump hits 1
    ]}

    Cells are [Atomic.t], so worker domains of the parallel staged
    executor can bump the same counter concurrently without losing
    increments.  The registry is global and append-only; per-run figures
    come from diffing snapshots with {!since}. *)

(** The atomic cell behind a named counter, registering it at zero on
    first sight.  Callers keep the cell so the per-event cost is one
    lock-free fetch-and-add. *)
val counter : string -> int Atomic.t

(** [bump c n] adds [n] to the counter, atomically. *)
val bump : int Atomic.t -> int -> unit

(** Current value of a named counter; 0 if never registered. *)
val get : string -> int

(** All counters with their current values, sorted by name. *)
val snapshot : unit -> (string * int) list

(** Counters whose value changed since [before] (a {!snapshot} result),
    with their deltas, diffed by name over the {e union} of the two
    snapshots.  Counters registered after the snapshot count from zero;
    counters present in [before] but back at their old value (e.g.
    bumped and reset by a nested run) are absent — only nonzero deltas
    are reported, and a delta can be negative if {!reset_all} ran in
    between.  Sorted by name. *)
val since : (string * int) list -> (string * int) list

(** Zero every registered counter (tests). *)
val reset_all : unit -> unit
