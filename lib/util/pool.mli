(** Fixed pool of OCaml 5 domains with nested fork-join parallel loops.

    [with_pool ~workers f] spawns [workers - 1] domains (the calling
    domain is the pool's worker 0) and joins them when [f] returns or
    raises.  [parallel_for] fans a loop body across the pool and blocks
    until every iteration finished; it is safe to nest — the submitter
    always participates, so a nested loop degrades to inline execution
    when every worker is busy.  Iterations must write disjoint slots:
    the claiming order is schedule-dependent, results must not be.

    With [workers = 1] no domain is spawned and every loop runs inline,
    so the sequential behaviour is exactly the pre-pool code path. *)

type t

val with_pool : workers:int -> (t -> 'a) -> 'a

(** Worker count, the submitting domain included. *)
val size : t -> int

(** [parallel_for t n f] runs [f 0 .. f (n-1)], each exactly once, in
    unspecified order across the pool; returns when all finished.  The
    first exception raised by an iteration is re-raised (the remaining
    iterations still run). *)
val parallel_for : t -> int -> (int -> unit) -> unit

(** Deterministic parallel [Array.init]: slot [i] is written only by
    iteration [i]. *)
val parallel_init : t -> int -> (int -> 'a) -> 'a array

(** Wall-clock seconds each worker spent inside tasks, by worker slot
    (0 = the submitting domain).  Nested loops are not double-counted. *)
val busy_seconds : t -> float array

(** Pool slot of the calling domain: a spawned worker's slot for the
    lifetime of that domain, 0 everywhere else (the submitting domain
    and any domain outside a pool).  Used by the tracing layer to tag
    events with the worker that recorded them. *)
val current_slot : unit -> int
