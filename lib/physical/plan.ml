open Relalg

(* Physical plans.  A plan node records the memo group it implements so
   that DAG-aware costing can recognize two references to the same shared
   (spool) subplan.  [cost] is the conventional *tree-wise* total used
   during search; [Dagcost] in the cost library computes the final
   deduplicated cost of CSE plans.

   [sbase]/[srefs] summarize the node's *region*: the sub-DAG reachable
   without crossing a spool boundary.  [sbase] is the total operator cost
   of the region (spool descendants contribute nothing); [srefs] lists the
   distinct spool plans the region references (by physical identity) with
   their reference counts.  A spool node's own summary describes its inner
   production region -- the collapse to a single reference happens at the
   consumer.  Cached at construction, these let [Dagcost] compute the
   deduplicated cost by closing over O(#spools) region summaries instead
   of re-walking the whole DAG on every plan comparison. *)

type t = {
  op : Physop.t;
  children : t list;
  group : int; (* memo group this plan implements; -1 when synthetic *)
  schema : Schema.t;
  props : Props.t; (* delivered physical properties *)
  stats : Slogical.Stats.t; (* estimated output stats *)
  op_cost : float; (* this operator's own estimated cost *)
  cost : float; (* tree-wise total: op_cost + sum of child costs *)
  sbase : float; (* region operator-cost total (spools excluded) *)
  srefs : (t * int) list; (* spools referenced by the region, with counts *)
}

(* The region a child contributes to its parent: a spool child is a
   boundary (one reference, no cost); any other child passes its own
   region through. *)
let region (c : t) =
  match c.op with
  | Physop.P_spool -> (0.0, [ (c, 1) ])
  | _ -> (c.sbase, c.srefs)

let add_refs acc refs =
  List.fold_left
    (fun acc (s, k) ->
      let rec add = function
        | [] -> [ (s, k) ]
        | (s', k') :: rest when s' == s -> (s', k' + k) :: rest
        | p :: rest -> p :: add rest
      in
      add acc)
    acc refs

let make ~op ~children ~group ~schema ~stats ~op_cost =
  let props =
    Physop.deliver op schema (List.map (fun c -> c.props) children)
  in
  let cost =
    List.fold_left (fun acc c -> acc +. c.cost) op_cost children
  in
  (* identical fold order as the tree-wise [cost], so on a spool-free plan
     [sbase] equals [cost] bit-for-bit *)
  let sbase =
    List.fold_left (fun acc c -> acc +. fst (region c)) op_cost children
  in
  let srefs =
    List.fold_left (fun acc c -> add_refs acc (snd (region c))) [] children
  in
  { op; children; group; schema; props; stats; op_cost; cost; sbase; srefs }

(* Fold over every node (parents after children); shared subtrees are
   visited once per reference. *)
let rec fold f acc t =
  let acc = List.fold_left (fold f) acc t.children in
  f acc t

let count_ops pred t = fold (fun n node -> if pred node.op then n + 1 else n) 0 t

(* Operators of the plan as a list, leaves first. *)
let operators t = List.rev (fold (fun acc n -> n.op :: acc) [] t)
