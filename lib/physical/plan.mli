(** Physical plans.

    A plan node records the memo group it implements so DAG-aware costing
    and printing can recognize two references to one shared (spool)
    subplan. [cost] is the tree-wise total used during search;
    [Scost.Dagcost] computes the deduplicated cost of plans with shared
    spools. *)

type t = {
  op : Physop.t;
  children : t list;
  group : int;  (** memo group this plan implements; [-1] when synthetic *)
  schema : Relalg.Schema.t;
  props : Props.t;  (** delivered physical properties *)
  stats : Slogical.Stats.t;  (** estimated output statistics *)
  op_cost : float;  (** this operator's own estimated cost *)
  cost : float;  (** tree-wise total: [op_cost] + children's [cost] *)
  sbase : float;
      (** operator-cost total of the node's region — the sub-DAG reachable
          without crossing a spool boundary; spool descendants contribute
          nothing. Equals [cost] bit-for-bit on spool-free plans. *)
  srefs : (t * int) list;
      (** distinct spool plans referenced by the region (physical
          identity), with reference counts, in first-reference order *)
}

(** The region summary a child contributes to its parent: a spool child is
    a boundary ([(0.0, [(child, 1)])]); any other child passes its own
    [sbase]/[srefs] through. *)
val region : t -> float * (t * int) list

(** Build a node, deriving [props] via {!Physop.deliver} and [cost]
    additively. *)
val make :
  op:Physop.t ->
  children:t list ->
  group:int ->
  schema:Relalg.Schema.t ->
  stats:Slogical.Stats.t ->
  op_cost:float ->
  t

(** Fold over every node, children before parents; shared subtrees are
    visited once per reference. *)
val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

(** Number of nodes whose operator satisfies the predicate (per
    reference). *)
val count_ops : (Physop.t -> bool) -> t -> int

(** All operators, leaves first (per reference). *)
val operators : t -> Physop.t list
