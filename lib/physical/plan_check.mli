(** Independent plan validity checker.

    Verifies every operator's input requirements against the properties its
    children actually deliver: stream aggregations receive input sorted on
    their keys and partitioned within them, joins receive co-partitioned
    (and, for merge joins, compatibly sorted) inputs, referenced columns
    exist, and recorded delivered properties match re-derivation. The
    optimizer uses {!check_op} to vet each candidate; tests run whole plans
    through {!validate}. *)

type violation = { where : string; what : string }

(** The sort order's first [length keys] columns cover exactly the key
    set — any permutation of the keys is an acceptable grouping order.
    With [keys = []] any input (even unsorted) qualifies. *)
val sorted_on_keys : Sortorder.t -> string list -> bool

(** Aligned co-partitioning for a join: serial on both sides, or some
    subset of the equality pairs maps the left hashing set one-to-one
    onto the right one.  Roundrobin and serial/hashed mixes never
    qualify. *)
val co_partitioned :
  (string * string) list -> Partition.t -> Partition.t -> bool

(** All violations local to one plan node (children are not recursed
    into). *)
val check_op : Plan.t -> violation list

(** Check the whole plan; [Ok ()] when no operator is violated. *)
val validate : Plan.t -> (unit, violation list) result

val pp_violation : violation Fmt.t
val violations_to_string : violation list -> string
